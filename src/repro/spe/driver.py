"""SPE driver: aux-buffer management, interrupts, and the cost model.

This module wires the sampler's record stream into the perf substrate the
way the kernel's ``arm_spe_pmu`` driver does (paper §II-A, §IV-A):

* records are written into the **aux buffer**; every ``aux_watermark``
  bytes the kernel posts a ``PERF_RECORD_AUX`` into the data ring and
  wakes the consumer (an interrupt),
* while the driver services the buffer, SPE profiling is **quiesced**:
  samples arriving in that window are dropped and the next AUX record
  carries ``PERF_AUX_FLAG_TRUNCATED`` — this is the buffer-size-dependent
  accuracy loss of paper Fig. 9,
* interrupt handling and consumer-side record processing steal cycles
  from the application — the **time overhead** of Fig. 8b/9/10,
* aux buffers smaller than :attr:`SpeCostModel.min_working_pages` cannot
  be double-buffered by the driver and produce no samples at all (the
  paper's observation that "ARM SPE loses all samples if the Aux buffer
  is not large enough; the minimum size to ensure SPE works is 4 pages").

Cost-model constants are calibrated so the *shapes* of Fig. 8-11 emerge;
see EXPERIMENTS.md for calibration notes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SpeError
from repro.kernel.perf_event import PerfEvent
from repro.kernel.records import (
    PERF_AUX_FLAG_COLLISION,
    PERF_AUX_FLAG_TRUNCATED,
    AuxRecord,
    AuxRecordBatch,
    pack_aux_records,
)
from repro.spe.packets import (
    RECORD_SIZE,
    DecodeStats,
    decode_stream,
    encode_records,
)
from repro.spe.records import SampleBatch
from repro.spe.refpath import reference_active
from repro.spe.sampler import SamplerOutput


@dataclass(frozen=True)
class SpeCostModel:
    """Timing constants of the SPE/perf service path (core cycles).

    The defaults are calibrated against the paper's reported magnitudes
    (sub-percent overhead at large periods, 90 %+ accuracy at 16+ aux
    pages on a 3 GHz core with 64 KB pages).
    """

    #: per-interrupt cost charged to the interrupted core (IRQ entry,
    #: buffer management, consumer wakeup: ~33 us at 3 GHz)
    irq_cycles: float = 100_000.0
    #: per-record consumer-side processing cost (decode, hash, store).
    #: Charged as records are produced: NMO's monitor drains on watermark
    #: wakeups *and* on its periodic epoll timeout, so every record
    #: written during the run is processed during the run.
    user_record_cycles: float = 30.0
    #: records lost around each buffer-management pass: SPE must be
    #: stopped and its write pointer switched, tearing a fixed window of
    #: in-flight records.  Loss fraction is therefore ``K / watermark`` —
    #: strongly buffer-size dependent (Fig. 9) but period independent
    #: (BFS keeps high accuracy at small periods, Fig. 8a).
    service_loss_records: int = 450
    #: scale factor on the service loss (consumer pipelining across
    #: many per-thread buffers shrinks it; single-buffer runs pay more)
    service_loss_scale: float = 1.0
    #: below this many aux pages the driver cannot start (paper: 4)
    min_working_pages: int = 4
    #: residual cost of an armed-but-idle session (epoll timeouts etc.)
    idle_overhead_cycles: float = 50_000.0
    #: aggregate interrupt rate beyond which perf throttles sampling
    max_irq_rate_hz: float = 11_000.0


@dataclass(frozen=True)
class FeedPlan:
    """Closed-form epoch schedule for one :meth:`SpeDriver.feed` call.

    The per-watermark service loop is fully determined by five integers:
    the stream length ``n``, the watermark in records ``wm_rec``, the
    sub-watermark carry ``pending_rec``, the carried torn-loss budget
    ``pending_loss``, and the per-service torn window ``loss_window``.
    The stream decomposes into *epochs*::

        [d0 torn] [w_first written] SERVICE
                  [loss torn] [wm_rec written] SERVICE   (x n_services-1)
                  [d_tail torn] [w_tail written]          (partial epoch)

    so service points, wakeup counts, losses, and flag schedules all
    follow arithmetically — no iteration required.
    """

    n: int
    wm_rec: int
    loss_window: int
    d0: int            #: records torn by the carried loss window
    w_first: int       #: records written before the first service
    n_services: int    #: watermark crossings (wakeups) in this feed
    d_tail: int        #: records torn in the trailing partial epoch
    w_tail: int        #: records written after the last service
    lost: int          #: total records torn (never reach the buffer)
    written: int       #: total records written to the aux buffer
    pending_rec_end: int   #: sub-watermark carry into the next feed
    pending_loss_end: int  #: torn-loss budget carried into the next feed


def plan_feed_epochs(
    n: int, wm_rec: int, pending_rec: int, pending_loss: int, loss_window: int
) -> FeedPlan:
    """Compute the :class:`FeedPlan` for a feed of ``n`` records."""
    d0 = min(pending_loss, n)
    avail = n - d0
    w_room = wm_rec - pending_rec
    if avail >= w_room:
        stride = loss_window + wm_rec
        after = avail - w_room
        n_services = 1 + after // stride
        rem = after % stride
        d_tail = min(rem, loss_window)
        w_tail = rem - d_tail
        w_first = w_room
        lost = d0 + (n_services - 1) * loss_window + d_tail
        pending_loss_end = loss_window - d_tail
    else:
        n_services = 0
        d_tail = 0
        w_tail = 0
        w_first = avail
        lost = d0
        pending_loss_end = pending_loss - d0
    written = n - lost
    return FeedPlan(
        n=n,
        wm_rec=wm_rec,
        loss_window=loss_window,
        d0=d0,
        w_first=w_first,
        n_services=n_services,
        d_tail=d_tail,
        w_tail=w_tail,
        lost=lost,
        written=written,
        pending_rec_end=pending_rec + written - n_services * wm_rec,
        pending_loss_end=pending_loss_end,
    )


def feed_written_mask(plan: FeedPlan) -> np.ndarray:
    """Boolean mask over the ``n`` input records of those written (i.e.
    not torn by a loss window), in arrival order."""
    mask = np.zeros(plan.n, dtype=bool)
    mask[plan.d0 : plan.d0 + plan.w_first] = True
    start = plan.d0 + plan.w_first
    if plan.n_services and start < plan.n:
        q = np.arange(plan.n - start, dtype=np.int64)
        mask[start:] = q % (plan.loss_window + plan.wm_rec) >= plan.loss_window
    return mask


@dataclass
class DriverResult:
    """Outcome of streaming one phase's samples through the buffers."""

    batch: SampleBatch                 #: samples delivered to the profiler
    n_input: int                       #: records offered by the sampler
    n_written: int                     #: records written to the aux buffer
    n_lost_stall: int                  #: dropped while SPE was quiesced
    n_wakeups: int                     #: interrupts / consumer wakeups
    overhead_cycles: float             #: cycles stolen from the app
    truncated_records: int             #: AUX records flagged TRUNCATED
    decode: DecodeStats | None = None
    #: the AUX records posted (a plain list from the reference/flush
    #: paths, a columnar :class:`AuxRecordBatch` from the planned path —
    #: both behave as a sequence of :class:`AuxRecord`)
    aux_records: list[AuxRecord] | AuxRecordBatch = field(default_factory=list)


class SpeDriver:
    """Per-core SPE session: sampler output -> aux/ring -> decoded samples."""

    def __init__(
        self,
        event: PerfEvent,
        cost: SpeCostModel | None = None,
    ) -> None:
        if event.ring is None or event.aux is None:
            raise SpeError("SPE event needs ring and aux buffers mmap'd")
        self.event = event
        self.cost = cost or SpeCostModel()
        self.total_collisions = 0
        self.total_wakeups = 0
        self.total_lost = 0
        self.total_input = 0
        self.total_written = 0
        # persistent-session state: records pending below the watermark
        # carry over between feed() calls (phases), like real SPE
        self._pending_rec = 0
        self._pending_loss = 0  # torn-window records still to drop
        self._prev_lost = False
        self._announced_collisions = False
        self._idle_charged = False

    @property
    def working(self) -> bool:
        """Whether the aux buffer is large enough for SPE to operate."""
        assert self.event.aux is not None
        return self.event.aux.n_pages >= self.cost.min_working_pages

    def _service(self, aux, ring, aux_records, charge: bool) -> tuple[
        SampleBatch, DecodeStats, float
    ]:
        """One buffer-management pass: AUX record, drain, decode.

        ``charge=False`` models the end-of-run drain, which the paper
        notes happens after the timed region ("the monitoring process in
        NMO drains the buffer after the exit of the program ... influence
        from the final buffer drain on timing overhead is minimal").
        """
        offset, size = aux.take_signal()
        flags = 0
        if self._prev_lost:
            flags |= PERF_AUX_FLAG_TRUNCATED
        if self.total_collisions and not self._announced_collisions:
            flags |= PERF_AUX_FLAG_COLLISION
            self._announced_collisions = True
        rec = AuxRecord(aux_offset=offset, aux_size=size, flags=flags)
        ring.write_record(rec)
        aux_records.append(rec)
        self.event.wakeups += 1
        self.total_wakeups += 1

        # stream the span through record-aligned windows: nothing
        # proportional to the drain size is ever materialised
        got, stats = decode_stream(aux.read_chunks(offset, size))
        aux.advance_tail(offset + size)
        cost = self.cost.irq_cycles if charge else 0.0
        return got, stats, cost

    def feed(self, out: SamplerOutput) -> DriverResult:
        """Stream one phase's sampler output into the session.

        Records accumulate in the aux buffer across calls; whenever the
        watermark is crossed, the kernel posts ``PERF_RECORD_AUX``, the
        consumer drains and decodes the bytes (they really round-trip
        through the buffer and packet decoder), interrupt and processing
        costs are charged, and a torn window of in-flight records is lost
        while SPE restarts (TRUNCATED on the next AUX record).

        The schedule of services, losses, and flags is computed in closed
        form by :func:`plan_feed_epochs` and executed with bulk buffer
        operations (:meth:`_planned_feed`); the original per-watermark
        loop is retained as :meth:`_reference_feed` and pinned
        byte-identical by the differential suite.  Degenerate geometries
        the planner does not model (a watermark smaller than one record
        relative to a sub-record buffer, or an aux ring whose signal
        state was moved externally) fall back to the reference loop.
        """
        aux = self.event.aux
        assert aux is not None
        if reference_active():
            return self._reference_feed(out)
        if max(1, aux.watermark // RECORD_SIZE) * RECORD_SIZE > aux.size:
            return self._reference_feed(out)
        if aux.pending_signal() != self._pending_rec * RECORD_SIZE or (
            aux.head - aux.tail != aux.pending_signal()
        ):
            # someone moved the ring out from under the session
            return self._reference_feed(out)
        return self._planned_feed(out)

    def _preamble(self, out: SamplerOutput) -> DriverResult | None:
        """Account the stream and handle the inert/empty cases (shared
        by both feed implementations); None means 'proceed'."""
        self.total_collisions += out.n_collisions
        n = out.n_kept
        self.total_input += n
        if not self.working or not self.event.enabled:
            # session armed but inert: everything is lost; a one-off
            # fixed cost covers the armed-but-idle monitoring machinery
            self.total_lost += n
            idle = 0.0
            if n and not self._idle_charged:
                idle = self.cost.idle_overhead_cycles
                self._idle_charged = True
            return DriverResult(
                batch=SampleBatch(),
                n_input=n,
                n_written=0,
                n_lost_stall=n,
                n_wakeups=0,
                overhead_cycles=idle,
                truncated_records=0,
            )
        if n == 0:
            return DriverResult(
                batch=SampleBatch(),
                n_input=0,
                n_written=0,
                n_lost_stall=0,
                n_wakeups=0,
                overhead_cycles=0.0,
                truncated_records=0,
            )
        return None

    def _reference_feed(self, out: SamplerOutput) -> DriverResult:
        """Scalar reference for :meth:`feed`: the original per-watermark
        loop, retained verbatim for differential testing (and as the
        fallback for ring geometries the planner does not model)."""
        aux = self.event.aux
        ring = self.event.ring
        assert aux is not None and ring is not None
        early = self._preamble(out)
        if early is not None:
            return early
        n = out.n_kept

        order = np.argsort(out.arrival_cycles, kind="stable")
        batch = out.batch.select(order)
        encoded = encode_records(batch)

        wm_rec = max(1, aux.watermark // RECORD_SIZE)
        loss_window = max(
            0, int(round(self.cost.service_loss_records * self.cost.service_loss_scale))
        )
        delivered: list[SampleBatch] = []
        aux_records: list[AuxRecord] = []
        overhead = 0.0
        wakeups_before = self.total_wakeups
        lost = 0
        truncated = 0
        decode_records = 0
        decode_valid = 0
        decode_skipped = 0

        i = 0
        while i < n:
            # drop samples torn by a previous restart (may span calls)
            if self._pending_loss:
                skip = min(self._pending_loss, n - i)
                self._pending_loss -= skip
                lost += skip
                i += skip
                self._prev_lost = self._prev_lost or skip > 0
                continue
            take = min(wm_rec - self._pending_rec, n - i)
            chunk = encoded[i : i + take].reshape(-1)
            accepted = aux.write(chunk)
            if accepted != chunk.shape[0]:
                raise SpeError("aux overflow despite watermark-paced writes")
            self._pending_rec += take
            i += take
            # consumer-side processing: every record written during the
            # run is decoded during the run (watermark wakeups plus the
            # monitor's periodic epoll timeout)
            overhead += take * self.cost.user_record_cycles
            if self._pending_rec >= wm_rec:
                got, stats, cost = self._service(aux, ring, aux_records, charge=True)
                if stats.n_records and self._prev_lost:
                    truncated += 1
                self._prev_lost = False
                delivered.append(got)
                decode_records += stats.n_records
                decode_valid += stats.n_valid
                decode_skipped += stats.n_skipped
                overhead += cost
                self._pending_rec = 0
                self._pending_loss = loss_window

        result_batch = SampleBatch.concat(delivered)
        n_lost_now = lost
        self.total_lost += n_lost_now
        self.total_written += n - n_lost_now
        return DriverResult(
            batch=result_batch,
            n_input=n,
            n_written=n - n_lost_now,
            n_lost_stall=n_lost_now,
            n_wakeups=self.total_wakeups - wakeups_before,
            overhead_cycles=overhead,
            truncated_records=truncated,
            decode=DecodeStats(
                n_records=decode_records,
                n_valid=decode_valid,
                n_skipped=decode_skipped,
                trailing_bytes=0,
            ),
            aux_records=aux_records,
        )

    def _planned_feed(self, out: SamplerOutput) -> DriverResult:
        """Epoch-planned :meth:`feed`: one plan, bulk buffer round-trips.

        Executes the :class:`FeedPlan` with a single encode, one paced
        aux-buffer stream (:meth:`AuxBuffer.stream_paced`), one packed
        ring write, and one decode over every serviced byte — the bytes
        still physically round-trip the aux ring, just without a Python
        iteration per watermark crossing.
        """
        aux = self.event.aux
        ring = self.event.ring
        assert aux is not None and ring is not None
        early = self._preamble(out)
        if early is not None:
            return early
        n = out.n_kept

        order = np.argsort(out.arrival_cycles, kind="stable")
        batch = out.batch.select(order)
        encoded = encode_records(batch)

        wm_rec = max(1, aux.watermark // RECORD_SIZE)
        loss_window = max(
            0, int(round(self.cost.service_loss_records * self.cost.service_loss_scale))
        )
        plan = plan_feed_epochs(
            n, wm_rec, self._pending_rec, self._pending_loss, loss_window
        )
        n_services = plan.n_services
        wm_bytes = wm_rec * RECORD_SIZE
        carry_rec = self._pending_rec

        rows = encoded[feed_written_mask(plan)]

        first_lost = self._prev_lost or plan.d0 > 0
        first_flags = PERF_AUX_FLAG_TRUNCATED if first_lost else 0
        later_flags = PERF_AUX_FLAG_TRUNCATED if loss_window > 0 else 0
        if n_services and self.total_collisions and not self._announced_collisions:
            first_flags |= PERF_AUX_FLAG_COLLISION
            self._announced_collisions = True
        aux_records: list[AuxRecord] | AuxRecordBatch = []
        truncated = 0
        if n_services:
            # bytes drained this feed: the sub-watermark carry already in
            # the ring plus this feed's writes, minus the new trailing
            # carry — the carried view must be decoded *before* the bulk
            # write below can lap it; decode_stream consumes eagerly and
            # never materialises the concatenated stream
            served = rows[: n_services * wm_rec - carry_rec]
            chunks = []
            if carry_rec:
                chunks.append(aux.read_view(aux.tail, carry_rec * RECORD_SIZE))
            chunks.append(served.reshape(-1))
            got, stats = decode_stream(chunks)
            # every drain is (signal_base + k*watermark, watermark) — the
            # signals come from one arange, not a tuple per wakeup
            base = aux.signal_base
            aux.stream_paced(
                rows.reshape(-1),
                n_drains=n_services,
                drain_bytes=wm_bytes,
                return_signals=False,
            )
            offsets = np.uint64(base) + np.arange(
                n_services, dtype=np.uint64
            ) * np.uint64(wm_bytes)
            flags = np.full(n_services, later_flags, dtype=np.uint64)
            flags[0] = first_flags
            ring.write_records_packed(pack_aux_records(offsets, wm_bytes, flags))
            aux_records = AuxRecordBatch(
                offsets,
                np.full(n_services, wm_bytes, dtype=np.uint64),
                flags,
            )
            self.event.wakeups += n_services
            self.total_wakeups += n_services
            truncated = int(first_lost) + (n_services - 1) * int(loss_window > 0)
            decode_stats = DecodeStats(
                n_records=stats.n_records,
                n_valid=stats.n_valid,
                n_skipped=stats.n_skipped,
                trailing_bytes=0,
            )
        else:
            got = SampleBatch()
            decode_stats = DecodeStats(0, 0, 0, 0)
            aux.stream_paced(
                rows.reshape(-1), n_drains=0, drain_bytes=wm_bytes,
                return_signals=False,
            )

        # overhead accumulates in the reference's exact order (per-epoch
        # record processing, then the service IRQ): np.cumsum runs the
        # same sequential float64 additions, so the result is bit-equal
        urc = self.cost.user_record_cycles
        if n_services == 0:
            overhead = plan.written * urc if plan.written else 0.0
        else:
            terms = np.empty(2 * n_services + 1, dtype=np.float64)
            terms[0] = plan.w_first * urc
            terms[1 : 2 * n_services : 2] = self.cost.irq_cycles
            terms[2 : 2 * n_services : 2] = wm_rec * urc
            terms[2 * n_services] = plan.w_tail * urc
            overhead = float(np.cumsum(terms)[-1])

        self._pending_rec = plan.pending_rec_end
        self._pending_loss = plan.pending_loss_end
        if n_services:
            self._prev_lost = plan.d_tail > 0
        else:
            self._prev_lost = self._prev_lost or plan.d0 > 0
        self.total_lost += plan.lost
        self.total_written += plan.written
        return DriverResult(
            batch=got,
            n_input=n,
            n_written=plan.written,
            n_lost_stall=plan.lost,
            n_wakeups=n_services,
            overhead_cycles=overhead,
            truncated_records=truncated,
            decode=decode_stats,
            aux_records=aux_records,
        )

    def flush(self) -> DriverResult:
        """End-of-run drain of the sub-watermark remainder (uncharged)."""
        aux = self.event.aux
        ring = self.event.ring
        assert aux is not None and ring is not None
        aux_records: list[AuxRecord] = []
        if not self.working or aux.pending_signal() <= 0:
            return DriverResult(
                batch=SampleBatch(),
                n_input=0,
                n_written=0,
                n_lost_stall=0,
                n_wakeups=0,
                overhead_cycles=0.0,
                truncated_records=0,
            )
        got, stats, _cost = self._service(aux, ring, aux_records, charge=False)
        self._pending_rec = 0
        self._prev_lost = False
        return DriverResult(
            batch=got,
            n_input=0,
            n_written=0,
            n_lost_stall=0,
            n_wakeups=1,
            overhead_cycles=0.0,
            truncated_records=0,
            decode=stats,
            aux_records=aux_records,
        )

    def process(self, out: SamplerOutput) -> DriverResult:
        """Convenience: feed one stream and flush (single-phase use).

        The flush's delivered samples are merged into the returned batch;
        its drain stays uncharged, matching the paper's measurement
        methodology.
        """
        res = self.feed(out)
        tail = self.flush()
        merged = SampleBatch.concat([res.batch, tail.batch])
        return DriverResult(
            batch=merged,
            n_input=res.n_input,
            n_written=res.n_written,
            n_lost_stall=res.n_lost_stall,
            n_wakeups=res.n_wakeups + tail.n_wakeups,
            overhead_cycles=res.overhead_cycles,
            truncated_records=res.truncated_records,
            decode=res.decode,
            aux_records=res.aux_records + tail.aux_records,
        )


@dataclass(frozen=True)
class ThrottleModel:
    """Sampling throttling at high core counts (paper Fig. 10-11).

    The paper observes "a substantial increase in sampling throttling at
    a high thread count" and a corresponding accuracy dip.  The per-core
    interrupt rates involved are far below perf's kernel rate limiter, so
    the effect is modelled as PMU/interrupt-fabric contention: beyond an
    onset thread count, a fraction of samples (growing linearly with the
    thread count, reaching ``peak_fraction`` at ``peak_threads``) is
    dropped, and throttle events are emitted in proportion.
    """

    onset_threads: int = 48
    peak_threads: int = 128
    peak_fraction: float = 0.035

    def throttled_fraction(self, irq_rate_hz: float, n_threads: int) -> float:
        """Fraction of samples lost to throttling.

        ``irq_rate_hz`` gates the effect: a session that produced no
        interrupts (tiny sample volume) is never throttled.
        """
        if irq_rate_hz < 0 or n_threads <= 0:
            raise SpeError("need irq_rate >= 0 and n_threads >= 1")
        if irq_rate_hz == 0 or n_threads <= self.onset_threads:
            return 0.0
        span = max(1, self.peak_threads - self.onset_threads)
        frac = self.peak_fraction * (n_threads - self.onset_threads) / span
        return min(frac, 1.0)

    def throttle_events(
        self, irq_rate_hz: float, n_threads: int, duration_s: float
    ) -> int:
        """Number of PERF_RECORD_THROTTLE events over the run."""
        frac = self.throttled_fraction(irq_rate_hz, n_threads)
        if frac <= 0.0 or duration_s <= 0:
            return 0
        # one throttle/unthrottle pair per throttled buffer service
        return max(1, int(frac * irq_rate_hz * duration_s))
