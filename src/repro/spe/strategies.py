"""Pluggable sampling strategies: the SPE period counter is one point
in a design space.

The hardware flow of paper Fig. 1 fixes *when* an operation is selected:
a decrementing interval counter with a small random perturbation.  The
continuous-profiling literature (SNIPPETS Snippet 2's
STATELESS_HASH / POISSON_HEADER / PAGE_HASH / HYBRID comparison) shows
that this choice dominates the *bias* of the resulting profile — which
pages look hot, which are never seen at all (dead zones), how far the
achieved rate drifts from the target.  This module makes the selection
rule a pluggable axis of :class:`~repro.spe.sampler.SpeSampler`:

* ``periodic`` — the paper's behaviour, delegated verbatim to
  :func:`repro.spe.sampler.sample_positions` so the default path stays
  byte-identical (golden-parity pinned),
* ``poisson`` — exponential inter-arrival gaps with mean ``period``
  (a renewal process; memoryless, so periodic code cannot alias),
* ``addr_hash`` — oversampled candidate grid filtered by an XOR-shift
  hash of each candidate's *address* (stateless, self-synchronising,
  but correlated with the data layout),
* ``page_hash`` — the same filter over the candidate's 64 KiB *page*,
  which concentrates samples on a fixed page subset (cheap, cache
  friendly, and maximally biased: unselected pages become dead zones),
* ``hybrid`` — Poisson timing at half the period thinned by a 1-in-2
  page hash (rate-accurate timing, partial page bias).

Strategies are selected by name via ``SpeConfig(strategy=...)``; the
default ``None`` means ``periodic`` and is excluded from canonical cache
keys (``__cache_optional__``), so every pre-zoo spec hash and cached
trial survives.  ``repro.scenarios``' ``sampling_accuracy`` kind scores
all of them against an exhaustive ground-truth pass
(:mod:`repro.analysis.sampling`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol

import numpy as np

from repro.errors import SpeError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.spe.sampler import OpSource

__all__ = [
    "HASH_OVERSAMPLE",
    "PAGE_SHIFT",
    "AddrHashStrategy",
    "HybridStrategy",
    "PageHashStrategy",
    "PeriodicStrategy",
    "PoissonStrategy",
    "STRATEGIES",
    "STRATEGY_NAMES",
    "SamplingStrategy",
    "check_period",
    "get_strategy",
    "xorshift_hash",
]

#: Page shift of the hash-filtered strategies: 64 KiB pages, matching the
#: Altra presets' page size (and therefore the placement engine's pages).
PAGE_SHIFT = 16

#: Candidate oversampling factor of the hash-filtered strategies: they
#: examine one op every ``period // HASH_OVERSAMPLE`` and keep the
#: 1-in-``HASH_OVERSAMPLE`` whose hash lands in the accept class, so the
#: expected rate matches the target period.
HASH_OVERSAMPLE = 8


def check_period(period: int) -> None:
    """Validate a sampling period; one error message for every call site.

    ``sampler.py`` and each strategy raise the identical
    ``SpeError(f"sampling period must be positive, got {period}")``.
    """
    if period <= 0:
        raise SpeError(f"sampling period must be positive, got {period}")


def xorshift_hash(values: np.ndarray) -> np.ndarray:
    """Stateless XOR-shift/multiply avalanche over uint64 values.

    The splitmix64 finaliser: every input bit influences every output
    bit, so taking ``% k`` of the result partitions addresses (or pages)
    into pseudo-random equivalence classes.  Deterministic — hash
    strategies consume no RNG state for the selection itself.
    """
    x = np.asarray(values, dtype=np.uint64).copy()
    x ^= x >> np.uint64(33)
    x *= np.uint64(0xFF51AFD7ED558CCD)
    x ^= x >> np.uint64(33)
    x *= np.uint64(0xC4CEB9FE1A85EC53)
    x ^= x >> np.uint64(33)
    return x


class SamplingStrategy(Protocol):
    """Selection rule: which op indices of a stream become SPE samples.

    Implementations draw strictly increasing positions in
    ``[0, n_ops)`` and return the carry residue for the next stream (the
    hardware counter never resets between phases, so a positive residue
    must round-trip through the next call's ``carry``).
    """

    #: registry name (``SpeConfig.strategy`` value)
    name: str

    def sample(
        self,
        source: "OpSource",
        period: int,
        jitter: bool,
        rng: np.random.Generator,
        carry: int | None = None,
    ) -> tuple[np.ndarray, int]:
        """(selected op indices int64, residue to carry) for one stream."""
        ...

    def page_sample_weight(self, page_addrs: np.ndarray) -> np.ndarray:
        """Inverse-probability weight for per-page sample counts.

        ``page_addrs`` are representative addresses (one per page);
        hash-biased strategies oversample their accepted pages by a
        known factor, and this weight undoes it so hotness magnitudes
        stay comparable across strategies (ranking within the sampled
        set is unaffected).
        """
        ...


def _renewal_positions(
    n_ops: int,
    draw,
    est_gap: int,
    carry: int | None,
) -> tuple[np.ndarray, int]:
    """Positions of a renewal process with gap sampler ``draw(k)``.

    The same chunked top-up skeleton as
    :func:`repro.spe.sampler.sample_positions` (which keeps its own copy
    verbatim for byte-parity), generalised over the gap distribution.
    """
    if n_ops < 0:
        raise SpeError("n_ops must be >= 0")
    first = int(carry) if carry is not None else int(draw(1)[0])
    if first <= 0:
        raise SpeError(f"carry must be positive, got {first}")
    if n_ops == 0:
        return np.zeros(0, dtype=np.int64), first
    if first > n_ops:
        return np.zeros(0, dtype=np.int64), first - n_ops
    n_est = int((n_ops - first) // max(1, est_gap)) + 2
    chunks = [first - 1 + np.concatenate([[0], np.cumsum(draw(n_est))])]
    last = int(chunks[-1][-1])
    while last < n_ops - 1:
        more = last + np.cumsum(draw(n_est))
        chunks.append(more)
        last = int(more[-1])
    pos = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
    past = pos[pos >= n_ops]
    residue = int(past[0]) - (n_ops - 1) if past.size else int(draw(1)[0])
    return pos[pos < n_ops], residue


class PeriodicStrategy:
    """The paper's interval counter: delegates to ``sample_positions``.

    The delegation is total — same function, same RNG call sequence —
    so ``strategy="periodic"`` (and the default ``strategy=None``) is
    byte-identical to the pre-zoo sampler, which the golden-parity
    suite pins.
    """

    name = "periodic"

    def sample(self, source, period, jitter, rng, carry=None):
        """Interval-counter positions via the original implementation."""
        from repro.spe.sampler import sample_positions

        return sample_positions(source.n_ops, period, jitter, rng, carry)

    def page_sample_weight(self, page_addrs):
        """Unbiased across pages: unit weight."""
        return np.ones(np.asarray(page_addrs).shape, dtype=np.float64)


class PoissonStrategy:
    """Exponential inter-arrival gaps with mean ``period``.

    A memoryless renewal process: no period for the program to alias
    with, at the cost of a heavier gap tail (occasional long blind
    stretches).  ``jitter`` is ignored — the process is inherently
    jittered.
    """

    name = "poisson"

    def sample(self, source, period, jitter, rng, carry=None):
        """Poisson-process positions (exponential gaps, clamped >= 1)."""
        check_period(period)

        def draw(k: int) -> np.ndarray:
            gaps = np.rint(rng.exponential(float(period), size=k))
            return np.maximum(gaps, 1.0).astype(np.int64)

        return _renewal_positions(source.n_ops, draw, period, carry)

    def page_sample_weight(self, page_addrs):
        """Unbiased across pages: unit weight."""
        return np.ones(np.asarray(page_addrs).shape, dtype=np.float64)


class _HashFilterStrategy:
    """Shared skeleton of the hash-filtered strategies.

    Candidates sit on an arithmetic grid every
    ``max(1, period // HASH_OVERSAMPLE)`` ops (phase-continuous via the
    carry residue); a candidate is kept iff the XOR-shift hash of its
    key (address or page) falls in the accept class.  Selection is
    RNG-free, so positions are exactly chunking-invariant on
    deterministic sources — splitting a stream at any boundary yields
    the same global positions.
    """

    #: right-shift applied to the address before hashing
    key_shift = 0

    def sample(self, source, period, jitter, rng, carry=None):
        """Hash-filtered candidate-grid positions (RNG-free selection)."""
        check_period(period)
        n_ops = source.n_ops
        if n_ops < 0:
            raise SpeError("n_ops must be >= 0")
        gap = max(1, period // HASH_OVERSAMPLE)
        first = int(carry) if carry is not None else gap
        if first <= 0:
            raise SpeError(f"carry must be positive, got {first}")
        if n_ops == 0:
            return np.zeros(0, dtype=np.int64), first
        if first > n_ops:
            return np.zeros(0, dtype=np.int64), first - n_ops
        cand = np.arange(first - 1, n_ops, gap, dtype=np.int64)
        residue = int(cand[-1]) + gap - (n_ops - 1)
        _, addrs = source.ops_at(cand, rng)
        keys = np.asarray(addrs, dtype=np.uint64) >> np.uint64(self.key_shift)
        keep = xorshift_hash(keys) % np.uint64(HASH_OVERSAMPLE) == 0
        return cand[keep], residue

    def page_sample_weight(self, page_addrs):
        """1/HASH_OVERSAMPLE on hash-accepted pages, 1 elsewhere.

        Accepted keys are examined at ``HASH_OVERSAMPLE`` times the
        target rate; rejected pages got whatever samples slipped through
        at other key values (for ``addr_hash``, sub-page keys mean every
        page usually retains some coverage).
        """
        keys = np.asarray(page_addrs, dtype=np.uint64) >> np.uint64(self.key_shift)
        accepted = xorshift_hash(keys) % np.uint64(HASH_OVERSAMPLE) == 0
        return np.where(accepted, 1.0 / HASH_OVERSAMPLE, 1.0)


class AddrHashStrategy(_HashFilterStrategy):
    """Stateless address-hash filter over an oversampled candidate grid.

    Keys are raw virtual addresses: within a page, different cache lines
    land in different hash classes, so page-level coverage degrades
    gracefully while individual addresses are sampled all-or-nothing.
    """

    name = "addr_hash"
    key_shift = 0


class PageHashStrategy(_HashFilterStrategy):
    """Page-hash filter: one accept/reject decision per 64 KiB page.

    The maximally biased scheme — pages outside the accept class are
    *never* sampled (dead zones by construction), while accepted pages
    are oversampled by ``HASH_OVERSAMPLE``.  The bias metrics in
    :mod:`repro.analysis.sampling` exist to quantify exactly this.
    """

    name = "page_hash"
    key_shift = PAGE_SHIFT


class HybridStrategy:
    """Poisson timing at half the period thinned by a 1-in-2 page hash.

    The SNIPPETS Snippet 2 HYBRID shape: unbiased memoryless *timing*
    combined with a partial page filter, trading half the page coverage
    for double the sampling density on the surviving half.
    """

    name = "hybrid"

    def sample(self, source, period, jitter, rng, carry=None):
        """Poisson positions at ``period // 2`` thinned by page hash."""
        check_period(period)
        half = max(1, period // 2)

        def draw(k: int) -> np.ndarray:
            gaps = np.rint(rng.exponential(float(half), size=k))
            return np.maximum(gaps, 1.0).astype(np.int64)

        pos, residue = _renewal_positions(source.n_ops, draw, half, carry)
        if pos.size == 0:
            return pos, residue
        _, addrs = source.ops_at(pos, rng)
        pages = np.asarray(addrs, dtype=np.uint64) >> np.uint64(PAGE_SHIFT)
        keep = xorshift_hash(pages) % np.uint64(2) == 0
        return pos[keep], residue

    def page_sample_weight(self, page_addrs):
        """1/2 on hash-accepted pages (sampled at twice the rate)."""
        pages = np.asarray(page_addrs, dtype=np.uint64) >> np.uint64(PAGE_SHIFT)
        accepted = xorshift_hash(pages) % np.uint64(2) == 0
        return np.where(accepted, 0.5, 1.0)


#: name -> strategy instance; the zoo the scenario layer iterates over.
STRATEGIES: dict[str, SamplingStrategy] = {
    s.name: s
    for s in (
        PeriodicStrategy(),
        PoissonStrategy(),
        AddrHashStrategy(),
        PageHashStrategy(),
        HybridStrategy(),
    )
}

#: registration order: periodic first (the default / paper behaviour).
STRATEGY_NAMES: tuple[str, ...] = tuple(STRATEGIES)


def get_strategy(name: str) -> SamplingStrategy:
    """Resolve a strategy name; unknown names list the known ones."""
    try:
        return STRATEGIES[name]
    except KeyError:
        raise SpeError(
            f"unknown sampling strategy {name!r}; "
            f"known: {', '.join(sorted(STRATEGIES))}"
        ) from None
