"""ARM SPE perf ``config`` encoding.

NMO programs SPE through the ``config`` field of ``perf_event_attr``
(paper §IV-A).  The bit layout follows the Linux ``arm_spe_pmu`` driver's
format attributes:

====================  =========
bit 0                 ``ts_enable`` (timestamp packets)
bit 1                 ``pa_enable`` (physical addresses)
bit 2                 ``pct_enable``
bit 16                ``jitter`` (randomise the sampling interval)
bit 32                ``branch_filter``
bit 33                ``load_filter``
bit 34                ``store_filter``
bits 35..46           ``min_latency`` (drop samples faster than this)
====================  =========

The paper's example value ``0x600000001`` is therefore *timestamps on,
loads on, stores on* — decoded and re-encoded by this module, and checked
against the paper in ``tests/spe/test_config.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SpeError

TS_ENABLE_BIT = 0
PA_ENABLE_BIT = 1
PCT_ENABLE_BIT = 2
JITTER_BIT = 16
BRANCH_FILTER_BIT = 32
LOAD_FILTER_BIT = 33
STORE_FILTER_BIT = 34
MIN_LATENCY_SHIFT = 35
MIN_LATENCY_BITS = 12

#: The exact value quoted in the paper for "sample all loads and stores".
CONFIG_LOADS_AND_STORES = 0x6_0000_0001


@dataclass(frozen=True)
class SpeConfig:
    """Decoded SPE sampling configuration.

    ``strategy`` selects the sampling rule by name
    (:mod:`repro.spe.strategies`); ``None`` means ``periodic`` — the
    hardware interval counter, the only rule real SPE implements — and
    is excluded from canonical cache keys so pre-zoo keys survive.  The
    field is a model-level knob: it has no perf ``attr.config`` bit, so
    :meth:`encode`/:meth:`decode` ignore it.
    """

    loads: bool = True
    stores: bool = True
    branches: bool = False
    jitter: bool = True
    timestamps: bool = True
    physical_addresses: bool = False
    min_latency: int = 0
    strategy: str | None = None

    #: ``strategy=None`` (periodic) stays out of canonical cache keys,
    #: so every pre-zoo cached trial and spec hash is unchanged.
    __cache_optional__ = frozenset({"strategy"})

    def __post_init__(self) -> None:
        if not (self.loads or self.stores or self.branches):
            raise SpeError("SPE filter must select at least one operation type")
        if not 0 <= self.min_latency < (1 << MIN_LATENCY_BITS):
            raise SpeError(
                f"min_latency must fit in {MIN_LATENCY_BITS} bits, "
                f"got {self.min_latency}"
            )
        if self.strategy is not None:
            from repro.spe.strategies import get_strategy

            get_strategy(self.strategy)

    # -- encoding ----------------------------------------------------------------

    def encode(self) -> int:
        """Pack into the perf ``attr.config`` value."""
        cfg = 0
        if self.timestamps:
            cfg |= 1 << TS_ENABLE_BIT
        if self.physical_addresses:
            cfg |= 1 << PA_ENABLE_BIT
        if self.jitter:
            cfg |= 1 << JITTER_BIT
        if self.branches:
            cfg |= 1 << BRANCH_FILTER_BIT
        if self.loads:
            cfg |= 1 << LOAD_FILTER_BIT
        if self.stores:
            cfg |= 1 << STORE_FILTER_BIT
        cfg |= self.min_latency << MIN_LATENCY_SHIFT
        return cfg

    @staticmethod
    def decode(config: int) -> "SpeConfig":
        """Unpack a perf ``attr.config`` value."""
        if config < 0:
            raise SpeError("config must be non-negative")
        return SpeConfig(
            loads=bool(config >> LOAD_FILTER_BIT & 1),
            stores=bool(config >> STORE_FILTER_BIT & 1),
            branches=bool(config >> BRANCH_FILTER_BIT & 1),
            jitter=bool(config >> JITTER_BIT & 1),
            timestamps=bool(config >> TS_ENABLE_BIT & 1),
            physical_addresses=bool(config >> PA_ENABLE_BIT & 1),
            min_latency=(config >> MIN_LATENCY_SHIFT) & ((1 << MIN_LATENCY_BITS) - 1),
        )

    # -- conveniences ---------------------------------------------------------------

    @staticmethod
    def loads_and_stores() -> "SpeConfig":
        """NMO's default memory-profiling filter (paper: 0x600000001)."""
        return SpeConfig(loads=True, stores=True, branches=False, jitter=False)

    @staticmethod
    def loads_only() -> "SpeConfig":
        return SpeConfig(loads=True, stores=False)

    @staticmethod
    def stores_only() -> "SpeConfig":
        return SpeConfig(loads=False, stores=True)
