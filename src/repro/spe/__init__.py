"""Simulated ARM Statistical Profiling Extension (SPE).

Implements the full hardware flow of paper Fig. 1: interval-counter
sampling with jitter, pipeline tracking with sample collisions, filter
bitmasks, byte-exact 64-byte packet records, and the aux-buffer driver
with its interrupt cost model.
"""

from repro.spe.config import (
    CONFIG_LOADS_AND_STORES,
    SpeConfig,
)
from repro.spe.driver import (
    DriverResult,
    FeedPlan,
    SpeCostModel,
    SpeDriver,
    ThrottleModel,
    feed_written_mask,
    plan_feed_epochs,
)
from repro.spe.packets import (
    RECORD_SIZE,
    DecodeStats,
    corrupt_records,
    decode_buffer,
    decode_stream,
    encode_batch,
    encode_records,
)
from repro.spe.records import SampleBatch
from repro.spe.refpath import reference_path
from repro.spe.sampler import (
    OpSource,
    SamplerOutput,
    SpeSampler,
    TraceOpSource,
    collision_scan,
    sample_positions,
)
from repro.spe.strategies import (
    STRATEGIES,
    STRATEGY_NAMES,
    SamplingStrategy,
    get_strategy,
)

__all__ = [
    "CONFIG_LOADS_AND_STORES",
    "DecodeStats",
    "DriverResult",
    "FeedPlan",
    "OpSource",
    "RECORD_SIZE",
    "STRATEGIES",
    "STRATEGY_NAMES",
    "SampleBatch",
    "SamplerOutput",
    "SamplingStrategy",
    "SpeConfig",
    "SpeCostModel",
    "SpeDriver",
    "SpeSampler",
    "ThrottleModel",
    "TraceOpSource",
    "collision_scan",
    "get_strategy",
    "corrupt_records",
    "decode_buffer",
    "decode_stream",
    "encode_batch",
    "encode_records",
    "feed_written_mask",
    "plan_feed_epochs",
    "reference_path",
    "sample_positions",
]
