"""Byte-exact SPE sample record encoding and decoding.

SPE emits each sample as a packed sequence of packets; perf exposes them
as 64-byte aligned records (paper §IV-A).  The reproduction uses the
layout constraints the paper documents, which are also the validity rules
NMO applies when decoding:

* the record is exactly 64 bytes,
* the **virtual address** is a 64-bit little-endian value at byte offset
  31, *prefaced* by the header byte ``0xB2`` (at offset 30),
* the **timestamp** is a 64-bit value at byte offset 56 (ending the
  record), prefaced by ``0x71`` (at offset 55),
* a record whose preface bytes are wrong, or whose address or timestamp
  is zero, is *skipped* (sample collision / truncation artefacts).

The remaining fields are laid out in the spirit of the SPE packet
grammar: an operation-type packet at offset 0 (header ``0x49``), an
events packet (``0x52``), latency counter packets (``0x98`` total /
``0x99`` issue), a data-source packet (``0x9A``), and a PC address packet
(header ``0xB0``).  Everything is NumPy-vectorised: a batch encodes to an
``(n, 64)`` uint8 matrix written straight into the aux buffer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PacketDecodeError
from repro.spe.records import SampleBatch
from repro.substrate.codec import register as _substrate

RECORD_SIZE = 64

# header bytes
HDR_OP_TYPE = 0x49
HDR_EVENTS = 0x52
HDR_LAT_TOTAL = 0x98
HDR_LAT_ISSUE = 0x99
HDR_DATA_SOURCE = 0x9A
HDR_PC = 0xB0
HDR_VADDR = 0xB2   # paper: address preface byte
HDR_TIMESTAMP = 0x71  # paper: timestamp preface byte

# byte offsets within the 64-byte record
OFF_OP_TYPE_HDR = 0
OFF_OP_TYPE = 1
OFF_EVENTS_HDR = 2
OFF_EVENTS = 3          # u16
OFF_LAT_TOTAL_HDR = 8
OFF_LAT_TOTAL = 9       # u16
OFF_LAT_ISSUE_HDR = 11
OFF_LAT_ISSUE = 12      # u16
OFF_SOURCE_HDR = 16
OFF_SOURCE = 17
OFF_PC_HDR = 20
OFF_PC = 21             # u64
OFF_VADDR_HDR = 30      # paper: 0xB2 immediately before the address
OFF_VADDR = 31          # paper: "offset of 31 bytes from the base"
OFF_TS_HDR = 55
OFF_TS = 56             # paper: "56-byte offset from the base"


def _put_u64(mat: np.ndarray, off: int, vals: np.ndarray) -> None:
    mat[:, off : off + 8] = (
        np.ascontiguousarray(vals, dtype="<u8").view(np.uint8).reshape(-1, 8)
    )


def _get_u64(mat: np.ndarray, off: int) -> np.ndarray:
    return np.ascontiguousarray(mat[:, off : off + 8]).view("<u8").reshape(-1)


def _put_u16(mat: np.ndarray, off: int, vals: np.ndarray) -> None:
    mat[:, off : off + 2] = (
        np.ascontiguousarray(vals, dtype="<u2").view(np.uint8).reshape(-1, 2)
    )


def _get_u16(mat: np.ndarray, off: int) -> np.ndarray:
    return np.ascontiguousarray(mat[:, off : off + 2]).view("<u2").reshape(-1)


def encode_batch(batch: SampleBatch) -> bytes:
    """Encode a batch into concatenated 64-byte records."""
    return encode_records(batch).tobytes()


def encode_records(batch: SampleBatch) -> np.ndarray:
    """Encode a batch into an ``(n, 64)`` uint8 record matrix.

    Same bytes as :func:`encode_batch` without the ``bytes`` round-trip:
    the driver writes rows (or row ranges) straight into the aux buffer
    and decodes slices of the same matrix, copy-free.
    """
    n = len(batch)
    mat = np.zeros((n, RECORD_SIZE), dtype=np.uint8)
    if n == 0:
        return mat
    mat[:, OFF_OP_TYPE_HDR] = HDR_OP_TYPE
    mat[:, OFF_OP_TYPE] = batch.kind
    mat[:, OFF_EVENTS_HDR] = HDR_EVENTS
    # events u16: bit0 retired, bit1 L1-hit convenience flag
    events = (1 + ((batch.level == 1).astype(np.uint16) << 1)).astype(np.uint16)
    _put_u16(mat, OFF_EVENTS, events)
    mat[:, OFF_LAT_TOTAL_HDR] = HDR_LAT_TOTAL
    _put_u16(mat, OFF_LAT_TOTAL, batch.total_lat)
    mat[:, OFF_LAT_ISSUE_HDR] = HDR_LAT_ISSUE
    _put_u16(mat, OFF_LAT_ISSUE, batch.issue_lat)
    mat[:, OFF_SOURCE_HDR] = HDR_DATA_SOURCE
    mat[:, OFF_SOURCE] = batch.level
    mat[:, OFF_PC_HDR] = HDR_PC
    _put_u64(mat, OFF_PC, batch.pc)
    mat[:, OFF_VADDR_HDR] = HDR_VADDR
    _put_u64(mat, OFF_VADDR, batch.addr)
    mat[:, OFF_TS_HDR] = HDR_TIMESTAMP
    _put_u64(mat, OFF_TS, batch.ts)
    return mat


@_substrate
@dataclass(frozen=True)
class DecodeStats:
    """Bookkeeping from one decode pass."""

    n_records: int        #: whole 64-byte records seen
    n_valid: int          #: records decoded into samples
    n_skipped: int        #: records failing the §IV-A validity rules
    trailing_bytes: int   #: partial record bytes at the end of the buffer


def decode_buffer(
    data: bytes | np.ndarray, strict: bool = False
) -> tuple[SampleBatch, DecodeStats]:
    """Decode concatenated records, skipping invalid ones.

    The default (lenient) mode mirrors NMO: "a packet is skipped from
    processing if either of those bytes is incorrect, or if the timestamp
    or virtual address is 0" (§IV-A).  ``strict=True`` raises on the first
    invalid record, which tests use to pinpoint corruption.
    """
    raw = (
        np.frombuffer(data, dtype=np.uint8)
        if isinstance(data, (bytes, bytearray, memoryview))
        else np.asarray(data, dtype=np.uint8)
    )
    n_records = raw.shape[0] // RECORD_SIZE
    trailing = int(raw.shape[0] - n_records * RECORD_SIZE)
    mat = raw[: n_records * RECORD_SIZE].reshape(n_records, RECORD_SIZE)
    if n_records == 0:
        return SampleBatch(), DecodeStats(0, 0, 0, trailing)

    addr = _get_u64(mat, OFF_VADDR)
    ts = _get_u64(mat, OFF_TS)
    valid = (
        (mat[:, OFF_VADDR_HDR] == HDR_VADDR)
        & (mat[:, OFF_TS_HDR] == HDR_TIMESTAMP)
        & (addr != 0)
        & (ts != 0)
    )
    n_valid = int(valid.sum())
    if strict and n_valid != n_records:
        bad = int(np.nonzero(~valid)[0][0])
        raise PacketDecodeError(
            f"record {bad}: preface/zero-field validation failed "
            f"(vaddr_hdr=0x{int(mat[bad, OFF_VADDR_HDR]):02x}, "
            f"ts_hdr=0x{int(mat[bad, OFF_TS_HDR]):02x}, "
            f"addr=0x{int(addr[bad]):x}, ts={int(ts[bad])})"
        )

    sel = mat[valid]
    batch = SampleBatch(
        pc=_get_u64(sel, OFF_PC),
        addr=addr[valid],
        ts=ts[valid],
        level=sel[:, OFF_SOURCE].copy(),
        kind=sel[:, OFF_OP_TYPE].copy(),
        total_lat=_get_u16(sel, OFF_LAT_TOTAL),
        issue_lat=_get_u16(sel, OFF_LAT_ISSUE),
    )
    stats = DecodeStats(
        n_records=n_records,
        n_valid=n_valid,
        n_skipped=n_records - n_valid,
        trailing_bytes=trailing,
    )
    return batch, stats


def decode_stream(
    chunks, strict: bool = False
) -> tuple[SampleBatch, DecodeStats]:
    """Decode a record stream delivered as a sequence of byte chunks.

    Chunks need not be record-aligned: partial-record bytes at the end
    of one chunk are carried into the next, so an arbitrarily large aux
    span can be decoded through fixed-size windows (e.g.
    :meth:`~repro.kernel.aux_buffer.AuxBuffer.read_chunks` views) without
    ever materialising the concatenated stream.  Decoding is row-wise,
    so the result is identical to :func:`decode_buffer` over the joined
    bytes: per-chunk batches concatenate and per-chunk stats sum, with
    ``trailing_bytes`` counting the final partial record.
    """
    batches: list[SampleBatch] = []
    n_records = n_valid = n_skipped = 0
    carry = np.empty(0, dtype=np.uint8)
    for chunk in chunks:
        arr = (
            np.frombuffer(chunk, dtype=np.uint8)
            if isinstance(chunk, (bytes, bytearray, memoryview))
            else np.asarray(chunk, dtype=np.uint8)
        )
        if carry.size:
            arr = np.concatenate([carry, arr])
        usable = arr.shape[0] - arr.shape[0] % RECORD_SIZE
        if usable:
            got, stats = decode_buffer(arr[:usable], strict=strict)
            batches.append(got)
            n_records += stats.n_records
            n_valid += stats.n_valid
            n_skipped += stats.n_skipped
        # the tail may alias a buffer the producer is about to reuse
        carry = arr[usable:].copy()
    return SampleBatch.concat(batches), DecodeStats(
        n_records=n_records,
        n_valid=n_valid,
        n_skipped=n_skipped,
        trailing_bytes=int(carry.shape[0]),
    )


def corrupt_records(
    data: bytes, indices, rng: np.random.Generator | None = None
) -> bytes:
    """Return a copy with the given records' preface bytes destroyed.

    Used by tests and failure-injection benches to emulate the collision
    artefacts that motivate NMO's skip-invalid decode rule.  Fully
    NumPy-vectorised (one fancy-indexed store per preface field) with
    the indices validated up front, so injecting faults into large
    buffers no longer dominates the benches that do it.
    """
    raw = np.frombuffer(data, dtype=np.uint8).copy()
    idx = np.asarray(indices, dtype=np.int64).reshape(-1)
    if idx.size == 0:
        return raw.tobytes()
    bad = (idx < 0) | (idx * RECORD_SIZE + RECORD_SIZE > raw.shape[0])
    if bad.any():
        i = int(idx[bad][0])
        raise PacketDecodeError(f"record index {i} out of range")
    base = idx * RECORD_SIZE
    raw[base + OFF_VADDR_HDR] = 0x00
    if rng is not None:
        # one draw per index, matching the scalar loop's rng consumption
        kill_ts = rng.random(idx.size) < 0.5
        raw[base[kill_ts] + OFF_TS_HDR] = 0x00
    return raw.tobytes()
