"""Sample record batches (structure-of-arrays).

One SPE sample record describes the full pipeline journey of one sampled
operation: program counter, operation type, data virtual address, memory
level that serviced it, total/issue latencies, and a generic-timer
timestamp (paper §II-A Fig. 1).  Batches hold those columns as NumPy
arrays so encode/decode/analysis are vectorised end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SpeError
from repro.substrate.codec import register as _substrate


@_substrate
@dataclass
class SampleBatch:
    """Columnar batch of SPE sample records."""

    pc: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.uint64))
    addr: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.uint64))
    ts: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.uint64))
    level: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.uint8))
    kind: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.uint8))
    total_lat: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.uint16))
    issue_lat: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.uint16))

    _COLUMNS = ("pc", "addr", "ts", "level", "kind", "total_lat", "issue_lat")
    _DTYPES = {
        "pc": np.uint64,
        "addr": np.uint64,
        "ts": np.uint64,
        "level": np.uint8,
        "kind": np.uint8,
        "total_lat": np.uint16,
        "issue_lat": np.uint16,
    }

    def __post_init__(self) -> None:
        n = None
        for c in self._COLUMNS:
            arr = np.asarray(getattr(self, c), dtype=self._DTYPES[c])
            setattr(self, c, arr)
            if arr.ndim != 1:
                raise SpeError(f"column {c} must be 1-D")
            if n is None:
                n = arr.shape[0]
            elif arr.shape[0] != n:
                raise SpeError(
                    f"column {c} length {arr.shape[0]} != batch length {n}"
                )

    def __len__(self) -> int:
        return int(self.pc.shape[0])

    def select(self, mask: np.ndarray) -> "SampleBatch":
        """Row subset by boolean mask or index array."""
        return SampleBatch(**{c: getattr(self, c)[mask] for c in self._COLUMNS})

    @staticmethod
    def concat(batches: list["SampleBatch"]) -> "SampleBatch":
        """Column-wise concatenation into one pre-allocated batch (no
        per-column N-way ``np.concatenate`` temporaries)."""
        if not batches:
            return SampleBatch()
        lens = [len(b) for b in batches]
        total = sum(lens)
        cols: dict[str, np.ndarray] = {}
        for c in SampleBatch._COLUMNS:
            col = np.empty(total, dtype=SampleBatch._DTYPES[c])
            off = 0
            for b, k in zip(batches, lens):
                if k:
                    col[off : off + k] = getattr(b, c)
                    off += k
            cols[c] = col
        return SampleBatch(**cols)

    def sorted_by_time(self) -> "SampleBatch":
        order = np.argsort(self.ts, kind="stable")
        return self.select(order)

    def to_dict(self) -> dict[str, np.ndarray]:
        return {c: getattr(self, c) for c in self._COLUMNS}

    @staticmethod
    def from_columns(**cols: np.ndarray) -> "SampleBatch":
        missing = set(SampleBatch._COLUMNS) - set(cols)
        if missing:
            raise SpeError(f"missing columns: {sorted(missing)}")
        return SampleBatch(**cols)
