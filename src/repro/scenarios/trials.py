"""Per-trial simulation recipes (the `how` of one grid point).

Every function here computes exactly one cached unit of work: it takes
a :class:`~repro.orchestrate.runner.TrialSpec` whose ``config`` dict is
the cache key, runs the simulation, and returns a plain pickleable
dict.  All of them are module-level so :class:`functools.partial`
closures over the machine cross the process-pool boundary.

These recipes *are* the legacy ``evalharness`` trial bodies — they
moved here so the declarative :class:`~repro.scenarios.session.Session`
and the legacy figure entry points share one canonical cache-key path;
the golden-parity suite pins that the payloads stay byte-identical.

Workload names resolve through :func:`repro.workloads.registry`, so an
unknown name raises the registry's "known: ..." error everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.tiering import tier_usage_rows, tiering_breakdown
from repro.colocation import CoRunnerSpec, run_colocation
from repro.errors import ScenarioError
from repro.machine.spec import GiB, MachineSpec
from repro.machine.tiers import (
    apply_tiering,
    mapped_page_ids,
    page_hotness,
    placement_for,
)
from repro.nmo.env import NmoMode, NmoSettings
from repro.nmo.profiler import NmoProfiler, ProfileResult
from repro.orchestrate import TrialSpec
from repro.substrate.codec import register as _substrate
from repro.workloads.registry import make_workload

#: default sampling-study scales per workload (sample counts shrink
#: linearly; shapes are scale-free)
SWEEP_SCALES = {"stream": 1 / 32, "cfd": 1 / 256, "bfs": 0.5}

#: mixed co-runner line-up for the colo scenarios: the bandwidth hog,
#: the two CloudSuite timeline models, then a second hog
COLO_MIX = ("stream", "pagerank", "inmem_analytics", "stream")
#: seconds the CloudSuite timeline models run at scale=1 (PageRank's
#: phase plan); STREAM's iteration count is sized to match
COLO_TIMELINE_SECONDS = 23.6

#: cache-key experiment name per scenario kind (the legacy names, so
#: existing cache entries and the golden-parity suite keep matching)
EXPERIMENT_NAMES = {
    "profile": "profile",
    "period_sweep": "period_sweep",
    "aux_sweep": "fig9_aux_buffer",
    "thread_sweep": "fig10_fig11_threads",
    "colocation": "colo_interference",
    "tiering": "tiering",
    "sampling_accuracy": "sampling_accuracy",
}


@_substrate
@dataclass
class SweepPoint:
    """One measured configuration (averaged over trials)."""

    workload: str
    period: int
    samples_mean: float
    samples_std: float
    samples_trials: list[int]
    accuracy_mean: float
    accuracy_std: float
    overhead_mean: float
    collisions_mean: float
    wakeups_mean: float
    extra: dict = field(default_factory=dict)


def _run_sampling(
    name: str,
    machine: MachineSpec,
    *,
    scale: float,
    period: int,
    n_threads: int = 32,
    aux_mib: int = 1,
    seed: int = 0,
    workload_kwargs: dict | None = None,
) -> ProfileResult:
    w = make_workload(
        name, machine, n_threads=n_threads, scale=scale,
        **(workload_kwargs or {}),
    )
    settings = NmoSettings(
        enable=True,
        mode=NmoMode.SAMPLING,
        period=period,
        auxbufsize_mib=aux_mib,
    )
    return NmoProfiler(w, settings, seed=seed).run()


def period_trial(machine: MachineSpec, spec: TrialSpec) -> dict[str, float]:
    """One period-sweep trial (Figs. 7-8)."""
    cfg = spec.config
    r = _run_sampling(
        cfg["workload"],
        machine,
        scale=cfg["scale"],
        period=cfg["period"],
        n_threads=cfg["n_threads"],
        seed=spec.seed,
    )
    return {
        "samples": float(r.samples_processed),
        "accuracy": float(r.accuracy),
        "overhead": float(r.time_overhead),
        "collisions": float(r.collisions),
        "wakeups": float(r.wakeups),
    }


def aux_buffer_trial(machine: MachineSpec, spec: TrialSpec) -> dict:
    """One aux-buffer-size point (Fig. 9).

    The legacy grid swept STREAM only, so ``workload`` is an optional
    config key (absent means ``stream`` — keeping old cache keys valid).
    """
    cfg = spec.config
    pages = cfg["aux_pages"]
    aux_mib = max(1, pages * machine.page_size // (1 << 20))
    settings = NmoSettings(
        enable=True, mode=NmoMode.SAMPLING, period=cfg["period"],
        auxbufsize_mib=aux_mib,
    )
    w = make_workload(
        cfg.get("workload", "stream"), machine,
        n_threads=cfg["n_threads"], scale=cfg["scale"],
    )
    prof = NmoProfiler(w, settings, seed=spec.seed)
    if settings.aux_pages(machine.page_size) != pages:
        # Table I sizes are MiB-granular; the sweep's sub-MiB points
        # (2-8 pages of 64 KiB) override the page count directly
        from repro.nmo.backends import FixedAuxPagesBackend

        prof.backend = FixedAuxPagesBackend(pages)
    r = prof.run()
    return {
        "aux_pages": pages,
        "accuracy": r.accuracy,
        "overhead": r.time_overhead,
        "samples": r.samples_processed,
        "wakeups": r.wakeups,
        "working": pages >= 4,
    }


def thread_trial(machine: MachineSpec, spec: TrialSpec) -> dict:
    """One thread-count point (Figs. 10-11); ``workload`` optional as
    in :func:`aux_buffer_trial`."""
    cfg = spec.config
    r = _run_sampling(
        cfg.get("workload", "stream"), machine,
        scale=cfg["scale"], period=cfg["period"],
        n_threads=cfg["threads"], seed=spec.seed,
    )
    return {
        "threads": cfg["threads"],
        "accuracy": r.accuracy,
        "overhead": r.time_overhead,
        "collisions": r.collisions,
        "throttle_events": r.throttle_events,
        "throttled_samples": r.throttled_samples,
        "samples": r.samples_processed,
        "wakeups": r.wakeups,
    }


def profile_trial(machine: MachineSpec, spec: TrialSpec) -> dict:
    """One plain profile run: a single workload under full settings."""
    cfg = spec.config
    settings = NmoSettings.from_env(cfg["settings"])
    w = make_workload(
        cfg["workload"], machine,
        n_threads=cfg["n_threads"], scale=cfg["scale"],
        **cfg.get("kwargs", {}),
    )
    r = NmoProfiler(w, settings, seed=spec.seed).run()
    return {
        "samples": float(r.samples_processed),
        "accuracy": float(r.accuracy),
        "overhead": float(r.time_overhead),
        "collisions": float(r.collisions),
        "wakeups": float(r.wakeups),
    }


# --------------------------------------------------------------------------
# Tiered memory
# --------------------------------------------------------------------------

def tiering_trial(machine: MachineSpec, spec: TrialSpec) -> dict:
    """One (policy, far-ratio) point of a tiering scenario.

    Builds the workload, derives its page→tier placement (running an
    SPE pilot profile first for the ``hotness`` policy — the paper's
    profile-then-place loop), re-times the phases for the placement,
    profiles the tiered run, and returns the per-tier breakdown plus
    the placement-induced slowdown against the all-local baseline.
    """
    cfg = spec.config
    policy, far_ratio = cfg["policy"], float(cfg["far_ratio"])
    if machine.tiers is None:
        # a Session machine override can bypass the spec's preset check;
        # fail before any profiling rather than mid-trial in the analysis
        raise ScenarioError(
            f"tiering trials need a tiered machine; {machine.name!r} "
            "declares no memory tiers"
        )
    n_tiers = len(machine.tiers)

    def build():
        return make_workload(
            cfg["workload"], machine,
            n_threads=cfg["n_threads"], scale=cfg["scale"],
        )

    hotness = None
    if policy == "hotness" and far_ratio > 0.0:
        # pilot: profile on the naive interleave placement at the same
        # ratio; its per-page sample counts rank pages for the real run.
        # At far_ratio 0 every page is near regardless of hotness, so
        # the pilot would be pure waste and is skipped (hotness stays
        # None; the all-zero-score placement below is identical).
        pilot = build()
        pilot_placement = placement_for(
            pilot.process.address_space, n_tiers, "interleave", far_ratio
        )
        pilot.attach_tiering(pilot_placement)
        apply_tiering(pilot, pilot_placement)
        pilot_result = NmoProfiler(
            pilot,
            NmoSettings(
                enable=True, mode=NmoMode.SAMPLING,
                period=cfg["pilot_period"],
            ),
            seed=spec.seed,
        ).run()
        hotness = page_hotness(
            pilot.process.address_space, pilot_result.batch.addr
        )

    w = build()
    flat_seconds = w.baseline_seconds()
    if policy == "hotness" and hotness is None:
        # far_ratio 0, pilot skipped: all-zero scores place every page
        # near, exactly what any score vector would have produced
        hotness = np.zeros(
            len(mapped_page_ids(w.process.address_space)), dtype=np.int64
        )
    placement = placement_for(
        w.process.address_space, n_tiers, policy, far_ratio, hotness=hotness
    )
    w.attach_tiering(placement)
    # the pilot's hotness also weights the re-timing: a placement that
    # fits the hot pages near stretches (almost) nothing
    apply_tiering(w, placement, hotness=hotness)
    tiered_seconds = w.baseline_seconds()
    settings = NmoSettings(
        enable=True, mode=NmoMode.SAMPLING, period=cfg["period"]
    )
    r = NmoProfiler(w, settings, seed=spec.seed).run()
    tiers = tier_usage_rows(tiering_breakdown(r, machine, placement))
    return {
        "policy": policy,
        "far_ratio": far_ratio,
        "slowdown": float(tiered_seconds / flat_seconds),
        "accuracy": float(r.accuracy),
        "overhead": float(r.time_overhead),
        "collisions": int(r.collisions),
        "samples": int(r.samples_processed),
        "wakeups": int(r.wakeups),
        "tiers": tiers,
    }


# --------------------------------------------------------------------------
# Sampling accuracy
# --------------------------------------------------------------------------

def sampling_accuracy_trial(machine: MachineSpec, spec: TrialSpec) -> dict:
    """One (strategy, period) point of a sampling_accuracy scenario.

    Runs an exhaustive ground-truth pass over the workload's op sources,
    profiles the same workload with the named sampling strategy (the
    strategy rides on the backend's :class:`~repro.spe.config.SpeConfig`,
    not on :class:`~repro.nmo.env.NmoSettings`, so settings-based cache
    keys are untouched), and scores the sampled per-page hotness with
    the :mod:`repro.analysis.sampling` bias metrics.
    """
    import dataclasses as _dc

    from repro.analysis.sampling import exhaustive_page_hotness, score_sampling

    cfg = spec.config
    strategy = cfg["strategy"]
    w = make_workload(
        cfg["workload"], machine,
        n_threads=cfg["n_threads"], scale=cfg["scale"],
    )
    truth = exhaustive_page_hotness(w, seed=spec.seed)
    settings = NmoSettings(
        enable=True, mode=NmoMode.SAMPLING, period=cfg["period"]
    )
    prof = NmoProfiler(w, settings, seed=spec.seed)
    prof.backend.config = _dc.replace(prof.backend.config, strategy=strategy)
    r = prof.run()
    est = page_hotness(w.process.address_space, r.batch.addr)
    bias = score_sampling(
        truth,
        est,
        samples=r.samples_processed,
        mem_counted=r.mem_counted,
        period=cfg["period"],
        near_fraction=float(cfg["near_fraction"]),
    )
    return {
        "strategy": strategy,
        "period": int(cfg["period"]),
        "samples": int(r.samples_processed),
        "accuracy": float(r.accuracy),
        "overhead": float(r.time_overhead),
        "collisions": int(r.collisions),
        **bias.as_row(),
    }


# --------------------------------------------------------------------------
# Co-location
# --------------------------------------------------------------------------

def colo_scenarios(max_corunners: int = 4) -> list[tuple[str, ...]]:
    """The co-runner line-ups swept by a colocation scenario.

    For each co-runner count 1..N: a homogeneous all-STREAM scenario
    (worst-case channel pressure) and, from two runners up, the mixed
    STREAM / PageRank / In-memory Analytics pairing (cycling through
    :data:`COLO_MIX` beyond four runners, so every count yields a
    distinct scenario).
    """
    if max_corunners < 1:
        raise ValueError("max_corunners must be >= 1")
    out: list[tuple[str, ...]] = []
    for n in range(1, max_corunners + 1):
        out.append(("stream",) * n)
        if n >= 2:
            out.append(tuple(COLO_MIX[i % len(COLO_MIX)] for i in range(n)))
    return out


def _stream_iterations(machine: MachineSpec, n_threads: int, scale: float) -> int:
    """Triad iterations that keep STREAM co-resident with the CloudSuite
    timeline models at the given scale (their wall time is
    ``COLO_TIMELINE_SECONDS * scale``; STREAM's scale knob sizes its
    arrays, not its duration, so the iteration count carries it)."""
    probe = make_workload(
        "stream", machine, n_threads=n_threads, scale=1.0, iterations=1
    )
    _phase, t0, t1 = probe.phase_spans()[-1]  # one triad iteration
    iter_s = t1 - t0
    target_s = COLO_TIMELINE_SECONDS * scale
    return max(2, int(round(target_s / iter_s)))


def _colo_runners(
    machine: MachineSpec, names: tuple[str, ...], n_threads: int, scale: float
) -> list[CoRunnerSpec]:
    runners = []
    for name in names:
        if name == "stream":
            runners.append(
                CoRunnerSpec(
                    "stream",
                    n_threads=n_threads,
                    scale=1.0,
                    kwargs={
                        "iterations": _stream_iterations(machine, n_threads, scale)
                    },
                )
            )
        else:
            runners.append(CoRunnerSpec(name, n_threads=n_threads, scale=scale))
    return runners


def colo_trial(machine: MachineSpec, spec: TrialSpec) -> dict:
    """One co-location line-up on the contended channel."""
    cfg = spec.config
    names = tuple(cfg["workloads"])
    settings = NmoSettings(
        enable=True, mode=NmoMode.SAMPLING, period=cfg["period"]
    )
    res = run_colocation(
        _colo_runners(machine, names, cfg["n_threads"], cfg["scale"]),
        machine=machine,
        settings=settings,
        seed=spec.seed,
    )
    runners = [
        {
            "workload": r.workload,
            "slowdown": float(r.slowdown),
            "demand_gibs": float(r.demand_bps / GiB),
            "granted_gibs": float(r.granted_bps / GiB),
            "accuracy": float(r.profile.accuracy),
            "overhead": float(r.profile.time_overhead),
            "collisions": int(r.profile.collisions),
            "samples": int(r.profile.samples_processed),
        }
        for r in res.runners
    ]
    return {
        "scenario": "+".join(names),
        "n_corunners": len(names),
        "runners": runners,
        "wall_seconds": float(res.wall_seconds),
        "granted_sum_gibs": float(res.granted_sum_bps() / GiB),
        "usable_gibs": float(res.usable_bandwidth / GiB),
    }


# --------------------------------------------------------------------------
# Aggregation
# --------------------------------------------------------------------------

def aggregate_sweep_points(
    name: str,
    periods: tuple[int, ...],
    trials: int,
    rows: list[dict],
    scale: float,
    n_threads: int,
) -> list[SweepPoint]:
    """Fold per-trial rows (period-major, trial-minor) into SweepPoints."""
    out: list[SweepPoint] = []
    for pi, period in enumerate(periods):
        group = rows[pi * trials : (pi + 1) * trials]
        samples = [r["samples"] for r in group]
        s = np.array(samples, dtype=float)
        a = np.array([r["accuracy"] for r in group])
        out.append(
            SweepPoint(
                workload=name,
                period=period,
                samples_mean=float(s.mean()),
                samples_std=float(s.std(ddof=1)) if trials > 1 else 0.0,
                samples_trials=list(map(int, samples)),
                accuracy_mean=float(a.mean()),
                accuracy_std=float(a.std(ddof=1)) if trials > 1 else 0.0,
                overhead_mean=float(np.mean([r["overhead"] for r in group])),
                collisions_mean=float(np.mean([r["collisions"] for r in group])),
                wakeups_mean=float(np.mean([r["wakeups"] for r in group])),
                extra={"scale": scale, "n_threads": n_threads},
            )
        )
    return out


#: scenario kind -> trial function (all module-level, pool-safe)
TRIAL_FNS = {
    "profile": profile_trial,
    "period_sweep": period_trial,
    "aux_sweep": aux_buffer_trial,
    "thread_sweep": thread_trial,
    "colocation": colo_trial,
    "tiering": tiering_trial,
    "sampling_accuracy": sampling_accuracy_trial,
}
