"""Named scenario presets: the paper exhibits as ScenarioSpec builders.

Each ``*_spec`` function builds the declarative equivalent of one
legacy ``evalharness`` entry point, with the same defaults; the legacy
functions are now shims over these.  :data:`SCENARIO_PRESETS` is the
registry behind ``python -m repro scenarios list`` and lets
``python -m repro run fig8`` resolve a name instead of a JSON file.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable

from repro.errors import ScenarioError
from repro.nmo.env import NmoMode, NmoSettings
from repro.scenarios.spec import (
    ColocationSpec,
    SamplingSpec,
    ScenarioSpec,
    SweepAxis,
    TieringSpec,
    WorkloadSpec,
)
from repro.spe.strategies import STRATEGY_NAMES

FIG7_PERIODS = (512, 1024, 2048, 4096, 8192, 16384, 32768, 65536, 131072)
FIG8_PERIODS = (1000, 2000, 4000, 8000, 16000, 32000, 64000, 128000)
FIG9_AUX_PAGES = (2, 4, 8, 16, 32, 64, 128, 512, 2048)
FIG10_THREADS = (1, 2, 4, 8, 16, 32, 48, 64, 96, 128)


def _sampling(period: int) -> NmoSettings:
    return NmoSettings(enable=True, mode=NmoMode.SAMPLING, period=period)


def _period_sweep_spec(
    name: str,
    periods: tuple[int, ...],
    trials: int,
    workloads: tuple[str, ...],
    scale: float | None,
    n_threads: int,
    seed: int,
) -> ScenarioSpec:
    axis = SweepAxis("period", tuple(periods))  # rejects an empty grid
    return ScenarioSpec(
        name=name,
        kind="period_sweep",
        workloads=tuple(
            WorkloadSpec(w, n_threads=n_threads, scale=scale)
            for w in workloads
        ),
        settings=_sampling(axis.values[0]),
        sweep=axis,
        trials=trials,
        seed=seed,
    )


def fig7_spec(
    periods: tuple[int, ...] = FIG7_PERIODS,
    trials: int = 5,
    workloads: tuple[str, ...] = ("stream", "cfd", "bfs"),
    scale: float | None = None,
    n_threads: int = 32,
    seed: int = 0,
) -> ScenarioSpec:
    """Fig. 7: SPE samples vs sampling period, with trials."""
    return _period_sweep_spec(
        "fig7", periods, trials, workloads, scale, n_threads, seed
    )


def fig8_spec(
    periods: tuple[int, ...] = FIG8_PERIODS,
    trials: int = 5,
    workloads: tuple[str, ...] = ("stream", "cfd", "bfs"),
    scale: float | None = None,
    n_threads: int = 32,
    seed: int = 0,
) -> ScenarioSpec:
    """Fig. 8: accuracy/overhead/collisions vs sampling period."""
    return _period_sweep_spec(
        "fig8", periods, trials, workloads, scale, n_threads, seed
    )


def fig9_spec(
    aux_pages: tuple[int, ...] = FIG9_AUX_PAGES,
    period: int = 1024,
    scale: float = 0.75,
    n_threads: int = 4,
    seed: int = 0,
) -> ScenarioSpec:
    """Fig. 9: accuracy/overhead vs aux buffer size (64 KiB pages)."""
    return ScenarioSpec(
        name="fig9",
        kind="aux_sweep",
        workloads=(WorkloadSpec("stream", n_threads=n_threads, scale=scale),),
        settings=_sampling(period),
        sweep=SweepAxis("aux_pages", tuple(aux_pages)),
        seed=seed,
    )


def fig10_spec(
    thread_counts: tuple[int, ...] = FIG10_THREADS,
    period: int = 4096,
    scale: float = 4.0,
    seed: int = 0,
) -> ScenarioSpec:
    """Figs. 10-11: overhead/accuracy/collisions/throttling vs threads."""
    return ScenarioSpec(
        name="fig10_fig11",
        kind="thread_sweep",
        workloads=(WorkloadSpec("stream", scale=scale),),
        settings=_sampling(period),
        sweep=SweepAxis("threads", tuple(thread_counts)),
        seed=seed,
    )


def colo_interference_spec(
    max_corunners: int = 4,
    scale: float = 0.02,
    period: int = 16384,
    n_threads: int = 8,
    seed: int = 0,
) -> ScenarioSpec:
    """Colo: 1-N co-located processes on the contended DRAM channel."""
    return ScenarioSpec(
        name="colo_interference",
        kind="colocation",
        settings=_sampling(period),
        colocation=ColocationSpec(
            max_corunners=max_corunners, n_threads=n_threads, scale=scale
        ),
        seed=seed,
    )


def tiering_sweep_spec(
    workload: str = "stream",
    n_threads: int = 8,
    scale: float = 1 / 32,
    period: int = 4096,
    policies: tuple[str, ...] = ("interleave", "first_touch", "hotness"),
    far_ratios: tuple[float, ...] = (0.0, 0.25, 0.5),
    machine: str = "tiered_altra_max",
    seed: int = 0,
) -> ScenarioSpec:
    """Tiering: placement policies vs far-memory ratio on a tiered machine."""
    return ScenarioSpec(
        name="tiering_sweep",
        kind="tiering",
        workloads=(WorkloadSpec(workload, n_threads=n_threads, scale=scale),),
        settings=_sampling(period),
        machine=machine,
        tiering=TieringSpec(policies=policies, far_ratios=far_ratios),
        seed=seed,
    )


def sampling_zoo_spec(
    workload: str = "stream",
    n_threads: int = 2,
    scale: float = 1 / 1024,
    strategies: tuple[str, ...] = STRATEGY_NAMES,
    periods: tuple[int, ...] = (512, 2048),
    near_fraction: float = 0.5,
    seed: int = 0,
) -> ScenarioSpec:
    """Sampling zoo: every strategy scored against exhaustive ground truth.

    The workload is kept small on purpose: the ground-truth pass walks
    every op in the stream once, so its cost scales with the op count,
    not the sampling period.
    """
    return ScenarioSpec(
        name="sampling_zoo",
        kind="sampling_accuracy",
        workloads=(WorkloadSpec(workload, n_threads=n_threads, scale=scale),),
        settings=_sampling(periods[0]),
        sampling=SamplingSpec(
            strategies=tuple(strategies),
            periods=tuple(periods),
            near_fraction=near_fraction,
        ),
        seed=seed,
    )


def quickstart_spec(
    workload: str = "stream",
    n_threads: int = 8,
    scale: float = 1 / 32,
    period: int = 4096,
    trials: int = 3,
    seed: int = 0,
) -> ScenarioSpec:
    """A single-workload profile run (the README quickstart as a spec)."""
    return ScenarioSpec(
        name="quickstart",
        kind="profile",
        workloads=(WorkloadSpec(workload, n_threads=n_threads, scale=scale),),
        settings=_sampling(period),
        trials=trials,
        seed=seed,
    )


#: name -> (zero-arg spec factory, one-line description); rendered by
#: ``python -m repro scenarios list``
SCENARIO_PRESETS: dict[str, tuple[Callable[[], ScenarioSpec], str]] = {
    "fig7": (fig7_spec, "Fig. 7 sweep: SPE samples vs sampling period"),
    "fig8": (fig8_spec, "Fig. 8 sweep: accuracy/overhead/collisions vs period"),
    "fig9": (fig9_spec, "Fig. 9 sweep: accuracy/overhead vs aux buffer size"),
    "fig10_fig11": (fig10_spec, "Figs. 10-11 sweep: profiling cost vs threads"),
    "colo_interference": (
        colo_interference_spec,
        "Colo: co-located processes on the contended DRAM channel",
    ),
    "quickstart": (quickstart_spec, "Profile: STREAM sampling quickstart"),
    "sampling_zoo": (
        sampling_zoo_spec,
        "Sampling: strategy zoo scored against exhaustive ground truth",
    ),
    "tiering_sweep": (
        tiering_sweep_spec,
        "Tiering: page-placement policies vs far-memory ratio",
    ),
}


def scenario_names() -> list[str]:
    """Registered preset names, sorted."""
    return sorted(SCENARIO_PRESETS)


def named_scenario(name: str) -> ScenarioSpec:
    """Build a preset scenario by name."""
    try:
        factory, _desc = SCENARIO_PRESETS[name]
    except KeyError:
        raise ScenarioError(
            f"unknown scenario {name!r}; known: {', '.join(scenario_names())}"
        ) from None
    return factory()


def load_scenario(source: str | Path) -> ScenarioSpec:
    """Resolve a CLI scenario argument: a JSON file path or a preset name.

    Preset names always win (a stray local file or directory named
    ``fig8`` cannot shadow the preset); anything else must be a
    ``.json`` path or an existing file.
    """
    name = str(source)
    if name in SCENARIO_PRESETS:
        return named_scenario(name)
    p = Path(source)
    if p.suffix == ".json" or p.is_file():
        return ScenarioSpec.from_file(p)
    return named_scenario(name)
