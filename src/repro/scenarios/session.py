"""The Session façade: plan a scenario's trial grid, run it, report.

:class:`Session` is the one front door for profile, sweep, and
co-location runs.  Given a :class:`~repro.scenarios.spec.ScenarioSpec`
it

1. **plans** the full trial grid as
   :class:`~repro.orchestrate.runner.TrialSpec` values — the *only*
   place trial configs (and therefore cache keys) are built,
2. **runs** every trial through
   :class:`~repro.orchestrate.ParallelRunner` (workers, result cache,
   deterministic spec-order collection all come for free),
3. **aggregates** the rows into the kind's result shape and wraps them
   in a :class:`RunReport` carrying provenance (spec hash, seed,
   resolved scales, package version) and execution stats.

The legacy ``evalharness`` figure entry points are thin shims over
this class; the golden-parity suite pins that both paths produce
byte-identical cached payloads and identical rendered tables.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from functools import partial
from pathlib import Path
from typing import Any

import numpy as np

from repro.errors import ScenarioError
from repro.machine.spec import MachineSpec
from repro.orchestrate import (
    ParallelRunner,
    ResultCache,
    TrialSpec,
    canonical_config,
)
from repro.scenarios.report import render_results
from repro.scenarios.spec import ScenarioSpec, WorkloadSpec
from repro.scenarios.trials import (
    EXPERIMENT_NAMES,
    SWEEP_SCALES,
    TRIAL_FNS,
    SweepPoint,
    aggregate_sweep_points,
    colo_scenarios,
)


def _sweep_scale(w: WorkloadSpec) -> float:
    """Resolve a period-sweep workload's scale (explicit or default)."""
    if w.scale is not None:
        return w.scale
    try:
        return SWEEP_SCALES[w.name]
    except KeyError:
        raise ScenarioError(
            f"workload {w.name!r} has no default sweep scale; "
            "set WorkloadSpec.scale explicitly"
        ) from None


def _json_safe(obj: Any) -> Any:
    """Results -> plain JSON types (SweepPoints flatten to dicts)."""
    if isinstance(obj, SweepPoint):
        return asdict(obj)
    if isinstance(obj, dict):
        return {str(k): _json_safe(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_json_safe(v) for v in obj]
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    return obj


@dataclass
class RunReport:
    """Everything one :meth:`Session.run` produced.

    (Distinct from :class:`repro.orchestrate.RunReport`, which is the
    runner's per-``map``-call execution counters; those counters land
    in this report's ``execution`` dict.)

    ``results`` is kind-shaped: ``dict[workload, list[SweepPoint]]``
    for period sweeps, a row list for the other kinds.  ``provenance``
    is deterministic (it never changes between identical runs);
    ``execution`` holds runtime facts (workers, cache hits) and is
    deliberately kept out of :meth:`render` so repeated runs print
    byte-identical reports.
    """

    spec: ScenarioSpec
    results: Any
    provenance: dict[str, Any] = field(default_factory=dict)
    execution: dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        """The exhibit tables/charts plus a deterministic provenance block."""
        body = render_results(self.spec, self.results)
        p = self.provenance
        footer = "\n".join(
            [
                f"scenario: {p['scenario']} ({p['kind']})",
                f"spec: sha256:{p['spec_hash'][:12]}",
                f"machine: {p['machine']}  seed: {p['seed']}  "
                f"trials: {p['trials']}",
                f"repro version: {p['version']}",
            ]
        )
        return body + "\n\n" + footer

    def to_dict(self) -> dict:
        return {
            "provenance": dict(self.provenance),
            "execution": dict(self.execution),
            "spec": self.spec.to_dict(),
            "results": _json_safe(self.results),
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def dump(self, path: str | Path) -> Path:
        """Write the JSON report; returns the path written."""
        p = Path(path)
        p.write_text(self.to_json() + "\n")
        return p


class Session:
    """Plan and execute declarative scenarios through one runner path.

    ``machine`` overrides the spec's machine preset (tests use the
    small machine); ``workers``/``cache`` plumb straight into
    :class:`~repro.orchestrate.ParallelRunner`.
    """

    def __init__(
        self,
        machine: MachineSpec | None = None,
        workers: int = 1,
        cache: ResultCache | None = None,
    ) -> None:
        self.machine = machine
        self.workers = workers
        self.cache = cache

    # -- planning --------------------------------------------------------

    def plan(self, spec: ScenarioSpec) -> list[TrialSpec]:
        """The scenario's full trial grid, in canonical order.

        Grid order is workload-major, axis-value-middle, trial-minor —
        the order the legacy entry points used, so per-workload slices
        of the result list stay identical.
        """
        machine = self.machine or spec.machine_spec()
        mc = canonical_config(machine)
        experiment = EXPERIMENT_NAMES[spec.kind]
        plan = getattr(self, f"_plan_{spec.kind}")
        return plan(spec, experiment, mc)

    def _plan_period_sweep(self, spec, experiment, mc) -> list[TrialSpec]:
        return [
            TrialSpec(
                experiment=experiment,
                config={
                    "workload": w.name,
                    "period": period,
                    "scale": _sweep_scale(w),
                    "n_threads": w.n_threads,
                    "machine": mc,
                },
                seed=spec.seed + trial,
            )
            for w in spec.workloads
            for period in spec.sweep.values
            for trial in range(spec.trials)
        ]

    def _plan_aux_sweep(self, spec, experiment, mc) -> list[TrialSpec]:
        w = spec.workloads[0]
        return [
            TrialSpec(
                experiment=experiment,
                config=self._with_workload(w, {
                    "aux_pages": pages,
                    "period": spec.settings.period,
                    "scale": w.scale,
                    "n_threads": w.n_threads,
                    "machine": mc,
                }),
                seed=spec.seed,
            )
            for pages in spec.sweep.values
        ]

    def _plan_thread_sweep(self, spec, experiment, mc) -> list[TrialSpec]:
        w = spec.workloads[0]
        return [
            TrialSpec(
                experiment=experiment,
                config=self._with_workload(w, {
                    "threads": t,
                    "period": spec.settings.period,
                    "scale": w.scale,
                    "machine": mc,
                }),
                seed=spec.seed,
            )
            for t in spec.sweep.values
        ]

    @staticmethod
    def _with_workload(w: WorkloadSpec, config: dict) -> dict:
        # the legacy aux/thread grids were STREAM-only and their cache
        # keys carry no workload field; only a non-default name adds one
        if w.name != "stream":
            config["workload"] = w.name
        return config

    def _plan_tiering(self, spec, experiment, mc) -> list[TrialSpec]:
        w = spec.workloads[0]
        t = spec.tiering
        return [
            TrialSpec(
                experiment=experiment,
                config={
                    "workload": w.name,
                    "n_threads": w.n_threads,
                    "scale": w.scale,
                    "period": spec.settings.period,
                    "policy": policy,
                    "far_ratio": ratio,
                    "pilot_period": t.pilot_period,
                    "machine": mc,
                },
                seed=spec.seed,
            )
            for policy in t.policies
            for ratio in t.far_ratios
        ]

    def _plan_sampling_accuracy(self, spec, experiment, mc) -> list[TrialSpec]:
        w = spec.workloads[0]
        s = spec.sampling
        return [
            TrialSpec(
                experiment=experiment,
                config={
                    "workload": w.name,
                    "n_threads": w.n_threads,
                    "scale": w.scale,
                    "strategy": strategy,
                    "period": period,
                    "near_fraction": s.near_fraction,
                    "machine": mc,
                },
                seed=spec.seed,
            )
            for strategy in s.strategies
            for period in s.periods
        ]

    def _plan_colocation(self, spec, experiment, mc) -> list[TrialSpec]:
        colo = spec.colocation
        return [
            TrialSpec(
                experiment=experiment,
                config={
                    "workloads": list(names),
                    "scale": colo.scale,
                    "period": spec.settings.period,
                    "n_threads": colo.n_threads,
                    "machine": mc,
                },
                seed=spec.seed,
            )
            for names in colo_scenarios(colo.max_corunners)
        ]

    def _plan_profile(self, spec, experiment, mc) -> list[TrialSpec]:
        return [
            TrialSpec(
                experiment=experiment,
                config={
                    "workload": w.name,
                    "n_threads": w.n_threads,
                    "scale": w.scale if w.scale is not None else 1.0,
                    "kwargs": dict(w.kwargs),
                    "settings": spec.settings.to_env(),
                    "machine": mc,
                },
                seed=spec.seed + trial,
            )
            for w in spec.workloads
            for trial in range(spec.trials)
        ]

    # -- execution -------------------------------------------------------

    def trial_fn(self, spec: ScenarioSpec):
        """The pool-safe trial callable for this spec's kind, bound to
        the session's machine (the exact callable :meth:`run` maps, so
        external drivers — the serve scheduler — hit the same cache
        entries byte-for-byte)."""
        machine = self.machine or spec.machine_spec()
        return partial(TRIAL_FNS[spec.kind], machine)

    def run(self, spec: ScenarioSpec) -> RunReport:
        """Execute the scenario and wrap the results in a RunReport."""
        trial_specs = self.plan(spec)
        runner = ParallelRunner(workers=self.workers, cache=self.cache)
        rows = runner.map(self.trial_fn(spec), trial_specs)
        return self.build_report(
            spec,
            rows,
            execution={
                "workers": runner.workers,
                "total_trials": runner.last_report.total,
                "cache_hits": runner.last_report.cache_hits,
                "executed": runner.last_report.executed,
                "cached": self.cache is not None,
                **runner.last_report.extra,
            },
        )

    def build_report(
        self,
        spec: ScenarioSpec,
        rows: list,
        execution: dict[str, Any] | None = None,
    ) -> RunReport:
        """Aggregate raw trial rows into the kind-shaped RunReport.

        ``rows`` must be in :meth:`plan` order.  Provenance is fully
        deterministic; ``execution`` carries the caller's runtime facts
        (workers, cache hits) and never reaches :meth:`RunReport.render`,
        so any runner that produces the same rows produces a
        byte-identical rendered report.
        """
        machine = self.machine or spec.machine_spec()
        return RunReport(
            spec=spec,
            results=self.aggregate(spec, rows),
            provenance={
                "scenario": spec.name,
                "kind": spec.kind,
                "spec_hash": spec.spec_hash(),
                "machine": (
                    spec.machine if self.machine is None
                    else f"custom:{machine.name}"
                ),
                "seed": spec.seed,
                "trials": spec.trials,
                "scales": self._resolved_scales(spec),
                "version": _version(),
            },
            execution=dict(execution or {}),
        )

    @staticmethod
    def _resolved_scales(spec: ScenarioSpec) -> dict[str, float]:
        if spec.kind == "colocation":
            return {"colocation": spec.colocation.scale}
        if spec.kind == "period_sweep":
            return {w.name: _sweep_scale(w) for w in spec.workloads}
        return {
            w.name: (w.scale if w.scale is not None else 1.0)
            for w in spec.workloads
        }

    def aggregate(self, spec: ScenarioSpec, rows: list) -> Any:
        """Fold plan-ordered trial rows into the kind's result shape."""
        if spec.kind == "period_sweep":
            values = spec.sweep.values
            per_workload = len(values) * spec.trials
            out: dict[str, list[SweepPoint]] = {}
            for wi, w in enumerate(spec.workloads):
                chunk = rows[wi * per_workload : (wi + 1) * per_workload]
                out[w.name] = aggregate_sweep_points(
                    w.name, values, spec.trials, chunk,
                    _sweep_scale(w), w.n_threads,
                )
            return out
        if spec.kind == "profile":
            out_rows = []
            for wi, w in enumerate(spec.workloads):
                group = rows[wi * spec.trials : (wi + 1) * spec.trials]
                keys = group[0].keys()
                out_rows.append(
                    {
                        "workload": w.name,
                        "trials": spec.trials,
                        "metrics": {
                            k: float(np.mean([g[k] for g in group]))
                            for k in keys
                        },
                        "stds": {
                            k: (
                                float(np.std([g[k] for g in group], ddof=1))
                                if spec.trials > 1 else 0.0
                            )
                            for k in keys
                        },
                    }
                )
            return out_rows
        return rows  # aux/thread/colo/sampling rows are already the shape


def _version() -> str:
    import repro

    return repro.__version__
