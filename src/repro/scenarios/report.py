"""Rendering for scenario results.

The figure-style renderers moved here from ``repro.evalharness.report``
(which re-exports them for compatibility) so the declarative
:class:`~repro.scenarios.session.Session` and the legacy entry points
format results through one code path.  :func:`render_results` picks the
renderer: a scenario *named* after a paper exhibit keeps that exhibit's
exact chart/table layout; anything else falls back to its kind's
generic rendering.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.plotting import line_plot, table
from repro.analysis.tiering import render_tier_rows
from repro.scenarios.trials import SweepPoint


def render_sweep_table(points: list[SweepPoint], title: str) -> str:
    """Fig. 7/8-style rows: one line per (workload, period)."""
    rows = []
    for p in points:
        rows.append(
            [
                p.workload,
                p.period,
                f"{p.samples_mean:.3e}",
                f"{p.samples_std:.2e}",
                f"{p.accuracy_mean * 100:.1f}%",
                f"{p.overhead_mean * 100:.2f}%",
                f"{p.collisions_mean:.1f}",
            ]
        )
    return table(
        ["workload", "period", "samples", "std", "accuracy", "overhead", "collisions"],
        rows,
        title=title,
    )


def render_fig7(results: dict[str, list[SweepPoint]]) -> str:
    """Samples vs period per workload, log-x chart + table."""
    parts = []
    series = {}
    for name, pts in results.items():
        x = np.array([p.period for p in pts], dtype=float)
        y = np.array([max(p.samples_mean, 1.0) for p in pts])
        series[name] = (x, np.log10(y))
        parts.append(render_sweep_table(pts, f"Fig.7 ({name})"))
    parts.append(
        line_plot(series, title="Fig.7: log10(samples) vs period", logx=True)
    )
    return "\n\n".join(parts)


def render_fig8(results: dict[str, list[SweepPoint]]) -> str:
    """Accuracy / overhead / collision charts plus tables, per workload."""
    parts = []
    for metric, label, scale in (
        ("accuracy_mean", "accuracy %", 100.0),
        ("overhead_mean", "time overhead %", 100.0),
        ("collisions_mean", "sample collisions", 1.0),
    ):
        series = {}
        for name, pts in results.items():
            x = np.array([p.period for p in pts], dtype=float)
            y = np.array([getattr(p, metric) * scale for p in pts])
            series[name] = (x, y)
        parts.append(line_plot(series, title=f"Fig.8: {label} vs period", logx=True))
    for name, pts in results.items():
        parts.append(render_sweep_table(pts, f"Fig.8 ({name})"))
    return "\n\n".join(parts)


def render_fig9(rows: list[dict]) -> str:
    """Aux-buffer sweep table and chart (accuracy/overhead vs pages)."""
    tbl = table(
        ["aux pages", "accuracy", "overhead", "samples", "wakeups", "working"],
        [
            [
                r["aux_pages"],
                f"{r['accuracy'] * 100:.1f}%",
                f"{r['overhead'] * 100:.2f}%",
                r["samples"],
                r["wakeups"],
                "yes" if r["working"] else "no",
            ]
            for r in rows
        ],
        title="Fig.9: aux buffer size sweep (STREAM)",
    )
    x = np.array([r["aux_pages"] for r in rows], dtype=float)
    chart = line_plot(
        {
            "accuracy%": (x, np.array([r["accuracy"] * 100 for r in rows])),
            "overhead%x10": (x, np.array([r["overhead"] * 1000 for r in rows])),
        },
        title="Fig.9 (overhead scaled x10 for visibility)",
        logx=True,
    )
    return tbl + "\n\n" + chart


def render_fig10_fig11(rows: list[dict]) -> str:
    """Thread-sweep table plus the Fig. 10/11 overhead/throttle charts."""
    tbl = table(
        [
            "threads", "accuracy", "overhead", "collisions",
            "throttle events", "samples",
        ],
        [
            [
                r["threads"],
                f"{r['accuracy'] * 100:.1f}%",
                f"{r['overhead'] * 100:.2f}%",
                r["collisions"],
                r["throttle_events"],
                r["samples"],
            ]
            for r in rows
        ],
        title="Fig.10/11: thread sweep (STREAM, 16-page aux)",
    )
    x = np.array([r["threads"] for r in rows], dtype=float)
    chart = line_plot(
        {
            "accuracy%": (x, np.array([r["accuracy"] * 100 for r in rows])),
            "overhead%x100": (x, np.array([r["overhead"] * 1e4 for r in rows])),
        },
        title="Fig.10: accuracy / overhead vs threads",
    )
    chart2 = line_plot(
        {
            "collisions": (x, np.array([r["collisions"] for r in rows], dtype=float)),
            "throttles": (
                x,
                np.array([r["throttle_events"] for r in rows], dtype=float),
            ),
        },
        title="Fig.11: collisions and throttling vs threads",
    )
    return "\n\n".join([tbl, chart, chart2])


def render_colo(rows: list[dict]) -> str:
    """Colo: per-runner interference table + slowdown-vs-corunners chart."""
    tbl_rows = []
    for row in rows:
        for r in row["runners"]:
            tbl_rows.append(
                [
                    row["scenario"],
                    r["workload"],
                    f"{r['demand_gibs']:.1f}",
                    f"{r['granted_gibs']:.1f}",
                    f"{r['slowdown']:.2f}x",
                    f"{r['accuracy'] * 100:.1f}%",
                    f"{r['collisions']}",
                    f"{r['samples']}",
                ]
            )
    usable = rows[0]["usable_gibs"] if rows else 0.0
    tbl = table(
        [
            "scenario", "runner", "demand GiB/s", "granted GiB/s",
            "slowdown", "accuracy", "collisions", "samples",
        ],
        tbl_rows,
        title=(
            "Colo: co-located processes on the contended channel "
            f"(usable {usable:.1f} GiB/s)"
        ),
    )
    homogeneous = [r for r in rows if set(r["scenario"].split("+")) == {"stream"}]
    if len(homogeneous) < 2:
        return tbl
    x = np.array([r["n_corunners"] for r in homogeneous], dtype=float)
    chart = line_plot(
        {
            "stream slowdown": (
                x,
                np.array([r["runners"][0]["slowdown"] for r in homogeneous]),
            ),
            "granted sum GiB/s /100": (
                x,
                np.array([r["granted_sum_gibs"] / 100 for r in homogeneous]),
            ),
        },
        title="Colo: STREAMxN slowdown and aggregate grant vs co-runners",
    )
    return tbl + "\n\n" + chart


def render_tiering(rows: list[dict]) -> str:
    """Tiering sweep: per-trial placement table + per-tier breakdowns.

    One summary row per (policy, far-ratio) grid point, then one
    breakdown table per trial showing how the DRAM-class samples,
    latency, and estimated traffic split across the memory tiers.
    """
    summary = table(
        [
            "policy", "far ratio", "slowdown", "accuracy", "overhead",
            "collisions", "samples",
        ],
        [
            [
                r["policy"],
                f"{r['far_ratio']:.2f}",
                f"{r['slowdown']:.2f}x",
                f"{r['accuracy'] * 100:.1f}%",
                f"{r['overhead'] * 100:.2f}%",
                r["collisions"],
                r["samples"],
            ]
            for r in rows
        ],
        title="Tiering: placement policy vs far-memory ratio",
    )
    parts = [summary]
    for r in rows:
        parts.append(
            render_tier_rows(
                r["tiers"],
                title=(
                    f"Tier breakdown: {r['policy']} @ far ratio "
                    f"{r['far_ratio']:.2f}"
                ),
            )
        )
    homogeneous = {}
    for r in rows:
        homogeneous.setdefault(r["policy"], []).append(r)
    series = {
        policy: (
            np.array([p["far_ratio"] for p in pts], dtype=float),
            np.array([p["slowdown"] for p in pts], dtype=float),
        )
        for policy, pts in homogeneous.items()
        if len(pts) >= 2
    }
    if series:
        parts.append(
            line_plot(series, title="Tiering: slowdown vs far-memory ratio")
        )
    return "\n\n".join(parts)


def render_sampling(rows: list[dict]) -> str:
    """Sampling zoo: per-(strategy, period) bias metrics plus a ranking.

    One detail row per grid point, then a ranking table averaging each
    strategy over its periods, sorted best-first by hotness rank error
    (ties break by miss-ratio error, then dead-access fraction, then
    name — fully deterministic per seed).
    """
    detail = table(
        [
            "strategy", "period", "samples", "rank err", "miss err",
            "dead zones", "max width", "dead access", "rate dev", "overhead",
        ],
        [
            [
                r["strategy"],
                r["period"],
                r["samples"],
                f"{r['rank_error']:.4f}",
                f"{r['miss_ratio_error']:.4f}",
                r["dead_zone_count"],
                r["dead_zone_max_width"],
                f"{r['dead_access_fraction'] * 100:.1f}%",
                f"{r['rate_deviation'] * 100:.1f}%",
                f"{r['overhead'] * 100:.2f}%",
            ]
            for r in rows
        ],
        title="Sampling zoo: strategy bias vs exhaustive ground truth",
    )
    by_strategy: dict[str, list[dict]] = {}
    for r in rows:
        by_strategy.setdefault(r["strategy"], []).append(r)
    means = []
    for name, pts in by_strategy.items():
        means.append(
            {
                "strategy": name,
                "rank_error": float(np.mean([p["rank_error"] for p in pts])),
                "miss_ratio_error": float(
                    np.mean([p["miss_ratio_error"] for p in pts])
                ),
                "dead_zone_count": float(
                    np.mean([p["dead_zone_count"] for p in pts])
                ),
                "dead_access_fraction": float(
                    np.mean([p["dead_access_fraction"] for p in pts])
                ),
                "overhead": float(np.mean([p["overhead"] for p in pts])),
            }
        )
    means.sort(
        key=lambda m: (
            m["rank_error"], m["miss_ratio_error"],
            m["dead_access_fraction"], m["strategy"],
        )
    )
    ranking = table(
        [
            "rank", "strategy", "rank err", "miss err", "dead zones",
            "dead access", "overhead",
        ],
        [
            [
                i + 1,
                m["strategy"],
                f"{m['rank_error']:.4f}",
                f"{m['miss_ratio_error']:.4f}",
                f"{m['dead_zone_count']:.1f}",
                f"{m['dead_access_fraction'] * 100:.1f}%",
                f"{m['overhead'] * 100:.2f}%",
            ]
            for i, m in enumerate(means)
        ],
        title="Sampling zoo: strategies ranked by hotness rank error",
    )
    return detail + "\n\n" + ranking


def render_period_sweep(results: dict[str, list[SweepPoint]]) -> str:
    """Generic period-sweep rendering for custom-named scenarios."""
    return "\n\n".join(
        render_sweep_table(pts, f"period sweep ({name})")
        for name, pts in results.items()
    )


def render_profile(rows: list[dict]) -> str:
    """Profile runs: one row per workload, trial means with stds."""
    return table(
        ["workload", "trials", "accuracy", "overhead", "samples",
         "collisions", "wakeups"],
        [
            [
                r["workload"],
                r["trials"],
                f"{r['metrics']['accuracy'] * 100:.1f}%"
                + (f" ±{r['stds']['accuracy'] * 100:.1f}" if r["trials"] > 1 else ""),
                f"{r['metrics']['overhead'] * 100:.2f}%",
                f"{r['metrics']['samples']:.0f}",
                f"{r['metrics']['collisions']:.1f}",
                f"{r['metrics']['wakeups']:.1f}",
            ]
            for r in rows
        ],
        title="Profile: per-workload sampling quality",
    )


#: scenarios named after a paper exhibit keep that exhibit's layout —
#: but only when the kind matches (a custom scenario may legitimately
#: reuse an exhibit name with a different kind)
NAMED_RENDERERS = {
    "fig7": ("period_sweep", render_fig7),
    "fig8": ("period_sweep", render_fig8),
    "fig9": ("aux_sweep", render_fig9),
    "fig10_fig11": ("thread_sweep", render_fig10_fig11),
    "colo_interference": ("colocation", render_colo),
    "sampling_zoo": ("sampling_accuracy", render_sampling),
}

#: fallback renderer per scenario kind
KIND_RENDERERS = {
    "profile": render_profile,
    "period_sweep": render_period_sweep,
    "aux_sweep": render_fig9,
    "thread_sweep": render_fig10_fig11,
    "colocation": render_colo,
    "tiering": render_tiering,
    "sampling_accuracy": render_sampling,
}


def render_results(spec, results) -> str:
    """Render a scenario's results: exhibit layout by name, else by kind."""
    named = NAMED_RENDERERS.get(spec.name)
    if named is not None and named[0] == spec.kind:
        return named[1](results)
    return KIND_RENDERERS[spec.kind](results)
