"""Declarative scenario specifications (the `what` of an evaluation run).

A :class:`ScenarioSpec` describes one paper-style evaluation scenario —
machine preset, one-or-many workloads by registry name, the NMO
settings, an optional sweep axis, an optional co-location block — as a
plain, serializable value object.  ``to_json``/``from_json`` round-trip
losslessly (``from_json(to_json(spec)) == spec``), so scenario files
can be checked in, diffed, and shipped to other machines; the spec hash
over the canonical JSON is the provenance anchor every
:class:`~repro.scenarios.session.RunReport` carries.

The spec is deliberately *dumb*: it holds no machinery, only enough
structure for :class:`~repro.scenarios.session.Session` to plan the
trial grid.  Validation happens eagerly at construction so a bad
scenario file fails at load time, with the workload registry's
"known: ..." error for unknown workload names.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.errors import ScenarioError
from repro.machine.spec import (
    MachineSpec,
    ampere_altra_max,
    small_test_machine,
    tiered_altra_max,
    tiered_test_machine,
    x86_pebs_machine,
)
from repro.machine.tiers import PLACEMENT_POLICIES
from repro.nmo.env import NmoMode, NmoSettings
from repro.spe.strategies import STRATEGY_NAMES
from repro.workloads.registry import get_workload_class

#: scenario kinds a Session knows how to plan
KINDS = (
    "profile", "period_sweep", "aux_sweep", "thread_sweep", "colocation",
    "tiering", "sampling_accuracy",
)

#: sweepable axis parameters, per kind
AXIS_PARAMS = {
    "period_sweep": "period",
    "aux_sweep": "aux_pages",
    "thread_sweep": "threads",
}

#: machine preset names a spec may reference (JSON stays portable)
MACHINE_PRESETS: dict[str, Callable[[], MachineSpec]] = {
    "ampere_altra_max": ampere_altra_max,
    "small_test_machine": small_test_machine,
    "tiered_altra_max": tiered_altra_max,
    "tiered_test_machine": tiered_test_machine,
    "x86_pebs_machine": x86_pebs_machine,
}


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise ScenarioError(message)


@dataclass(frozen=True)
class WorkloadSpec:
    """One workload by registry name plus its sizing knobs.

    ``scale=None`` means "use the kind's default" (the per-workload
    :data:`~repro.scenarios.trials.SWEEP_SCALES` for period sweeps, 1.0
    for profile runs); sweep kinds that have no default require an
    explicit scale.
    """

    name: str
    n_threads: int = 32
    scale: float | None = None
    kwargs: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        get_workload_class(self.name)  # unknown names raise "known: ..."
        _require(self.n_threads >= 1, "workload needs at least one thread")
        if self.scale is not None:
            _require(self.scale > 0, "workload scale must be positive")
            object.__setattr__(self, "scale", float(self.scale))
        _require(
            isinstance(self.kwargs, dict),
            "workload kwargs must be a JSON object",
        )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "n_threads": self.n_threads,
            "scale": self.scale,
            "kwargs": dict(self.kwargs),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "WorkloadSpec":
        _check_keys(d, {"name"}, {"n_threads", "scale", "kwargs"}, "workload")
        return cls(
            name=d["name"],
            n_threads=int(d.get("n_threads", 32)),
            scale=d.get("scale"),
            kwargs=dict(d.get("kwargs") or {}),
        )


@dataclass(frozen=True)
class SweepAxis:
    """The swept parameter and its grid values."""

    param: str
    values: tuple[int, ...]

    def __post_init__(self) -> None:
        _require(
            self.param in AXIS_PARAMS.values(),
            f"unknown sweep axis {self.param!r}; "
            f"known: {', '.join(sorted(set(AXIS_PARAMS.values())))}",
        )
        values = tuple(int(v) for v in self.values)
        _require(len(values) >= 1, "sweep axis needs at least one value")
        _require(all(v > 0 for v in values), "sweep values must be positive")
        object.__setattr__(self, "values", values)

    def to_dict(self) -> dict:
        return {"param": self.param, "values": list(self.values)}

    @classmethod
    def from_dict(cls, d: dict) -> "SweepAxis":
        _check_keys(d, {"param", "values"}, set(), "sweep")
        return cls(param=d["param"], values=tuple(d["values"]))


@dataclass(frozen=True)
class ColocationSpec:
    """Co-location block: sweep 1..N co-runner line-ups on one machine.

    Line-ups come from :func:`~repro.scenarios.trials.colo_scenarios`
    (all-STREAM plus the mixed CloudSuite pairing per count); every
    runner shares ``n_threads`` and ``scale`` while seeds stay
    per-runner.
    """

    max_corunners: int = 4
    n_threads: int = 8
    scale: float = 0.02

    def __post_init__(self) -> None:
        _require(self.max_corunners >= 1, "max_corunners must be >= 1")
        _require(self.n_threads >= 1, "co-runners need at least one thread")
        _require(self.scale > 0, "co-location scale must be positive")
        object.__setattr__(self, "scale", float(self.scale))

    def to_dict(self) -> dict:
        return {
            "max_corunners": self.max_corunners,
            "n_threads": self.n_threads,
            "scale": self.scale,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ColocationSpec":
        _check_keys(
            d, set(), {"max_corunners", "n_threads", "scale"}, "colocation"
        )
        return cls(
            max_corunners=int(d.get("max_corunners", 4)),
            n_threads=int(d.get("n_threads", 8)),
            scale=d.get("scale", 0.02),
        )


@dataclass(frozen=True)
class TieringSpec:
    """Tiering block: sweep placement policies against far-memory ratios.

    A ``tiering`` scenario profiles one workload on a tiered machine
    preset under every ``(policy, far_ratio)`` grid point: the near
    tier is budgeted ``1 - far_ratio`` of the workload's pages and the
    far tiers split the rest (see
    :func:`repro.machine.tiers.tier_budgets`).  The ``hotness`` policy
    runs an SPE pilot profile at ``pilot_period`` first and promotes
    the hottest pages — the paper's "use SPE to decide placement" loop.
    """

    policies: tuple[str, ...] = PLACEMENT_POLICIES
    far_ratios: tuple[float, ...] = (0.0, 0.25, 0.5)
    pilot_period: int = 2048

    def __post_init__(self) -> None:
        policies = tuple(str(p) for p in self.policies)
        _require(len(policies) >= 1, "tiering needs at least one policy")
        unknown = [p for p in policies if p not in PLACEMENT_POLICIES]
        _require(
            not unknown,
            f"unknown placement policies {unknown}; "
            f"known: {', '.join(PLACEMENT_POLICIES)}",
        )
        _require(
            len(set(policies)) == len(policies),
            "tiering policies must be unique",
        )
        object.__setattr__(self, "policies", policies)
        ratios = tuple(float(r) for r in self.far_ratios)
        _require(len(ratios) >= 1, "tiering needs at least one far ratio")
        _require(
            all(0.0 <= r < 1.0 for r in ratios),
            "far ratios must be in [0, 1)",
        )
        _require(
            len(set(ratios)) == len(ratios), "far ratios must be unique"
        )
        object.__setattr__(self, "far_ratios", ratios)
        _require(self.pilot_period >= 1, "pilot_period must be >= 1")

    def to_dict(self) -> dict:
        return {
            "policies": list(self.policies),
            "far_ratios": list(self.far_ratios),
            "pilot_period": self.pilot_period,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "TieringSpec":
        _check_keys(
            d, set(), {"policies", "far_ratios", "pilot_period"}, "tiering"
        )
        return cls(
            policies=tuple(d.get("policies", PLACEMENT_POLICIES)),
            far_ratios=tuple(d.get("far_ratios", (0.0, 0.25, 0.5))),
            pilot_period=int(d.get("pilot_period", 2048)),
        )


@dataclass(frozen=True)
class SamplingSpec:
    """Sampling block: score sampling strategies against ground truth.

    A ``sampling_accuracy`` scenario profiles one workload under every
    ``(strategy, period)`` grid point and compares each run's per-page
    hotness with an exhaustive pass over the same op sources
    (:mod:`repro.analysis.sampling`).  ``near_fraction`` sizes the
    near-tier budget the ``miss_ratio_error`` placement-regret metric
    evaluates against.
    """

    strategies: tuple[str, ...] = STRATEGY_NAMES
    periods: tuple[int, ...] = (512, 2048)
    near_fraction: float = 0.5

    def __post_init__(self) -> None:
        strategies = tuple(str(s) for s in self.strategies)
        _require(len(strategies) >= 1, "sampling needs at least one strategy")
        unknown = [s for s in strategies if s not in STRATEGY_NAMES]
        _require(
            not unknown,
            f"unknown sampling strategies {unknown}; "
            f"known: {', '.join(STRATEGY_NAMES)}",
        )
        _require(
            len(set(strategies)) == len(strategies),
            "sampling strategies must be unique",
        )
        object.__setattr__(self, "strategies", strategies)
        periods = tuple(int(p) for p in self.periods)
        _require(len(periods) >= 1, "sampling needs at least one period")
        _require(all(p > 0 for p in periods), "sampling periods must be positive")
        _require(
            len(set(periods)) == len(periods), "sampling periods must be unique"
        )
        object.__setattr__(self, "periods", periods)
        _require(
            0.0 < self.near_fraction < 1.0,
            "near_fraction must be in (0, 1)",
        )
        object.__setattr__(self, "near_fraction", float(self.near_fraction))

    def to_dict(self) -> dict:
        return {
            "strategies": list(self.strategies),
            "periods": list(self.periods),
            "near_fraction": self.near_fraction,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "SamplingSpec":
        _check_keys(
            d, set(), {"strategies", "periods", "near_fraction"}, "sampling"
        )
        return cls(
            strategies=tuple(d.get("strategies", STRATEGY_NAMES)),
            periods=tuple(d.get("periods", (512, 2048))),
            near_fraction=d.get("near_fraction", 0.5),
        )


def _check_keys(
    d: dict, required: set[str], optional: set[str], what: str
) -> None:
    if not isinstance(d, dict):
        raise ScenarioError(f"{what} block must be a JSON object, got {d!r}")
    missing = required - set(d)
    _require(not missing, f"{what} block missing keys: {sorted(missing)}")
    unknown = set(d) - required - optional
    _require(not unknown, f"{what} block has unknown keys: {sorted(unknown)}")


def _default_settings() -> NmoSettings:
    return NmoSettings(enable=True, mode=NmoMode.SAMPLING, period=4096)


@dataclass(frozen=True)
class ScenarioSpec:
    """One declarative evaluation scenario.

    ``settings.period`` is the sampling period used by every trial;
    for ``period_sweep`` kinds the sweep axis overrides it per grid
    point (the stored value is only the template).  ``seed`` is the
    base seed: sweep trials use ``seed + trial_index``.
    """

    name: str
    kind: str
    workloads: tuple[WorkloadSpec, ...] = ()
    settings: NmoSettings = field(default_factory=_default_settings)
    machine: str = "ampere_altra_max"
    sweep: SweepAxis | None = None
    colocation: ColocationSpec | None = None
    tiering: TieringSpec | None = None
    sampling: SamplingSpec | None = None
    trials: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        _require(bool(self.name), "scenario needs a name")
        _require(
            self.kind in KINDS,
            f"unknown scenario kind {self.kind!r}; known: {', '.join(KINDS)}",
        )
        _require(
            self.machine in MACHINE_PRESETS,
            f"unknown machine preset {self.machine!r}; "
            f"known: {', '.join(sorted(MACHINE_PRESETS))}",
        )
        object.__setattr__(self, "workloads", tuple(self.workloads))
        _require(
            all(isinstance(w, WorkloadSpec) for w in self.workloads),
            "workloads must be WorkloadSpec instances",
        )
        _require(
            isinstance(self.settings, NmoSettings),
            "settings must be an NmoSettings",
        )
        _require(self.trials >= 1, "trials must be >= 1")
        _require(isinstance(self.seed, int), "seed must be an integer")
        getattr(self, f"_check_{self.kind}")()

    # -- per-kind structural rules ---------------------------------------

    def _check_sampling_template(self) -> None:
        """Sweep/colo trials pin the legacy recipe: only ``NMO_PERIOD``
        of the settings block (and no workload kwargs) reaches the
        trial, so reject anything that would be silently dropped — the
        spec hash must only cover what actually runs."""
        template = dataclasses.replace(
            _default_settings(), period=self.settings.period
        )
        _require(
            self.settings == template,
            f"{self.kind} honours only NMO_PERIOD of the settings block; "
            "the other fields must keep their Table I defaults",
        )
        _require(
            all(not w.kwargs for w in self.workloads),
            f"{self.kind} does not pass workload kwargs; remove them",
        )

    def _check_axis(self) -> None:
        want = AXIS_PARAMS[self.kind]
        _require(
            self.sweep is not None and self.sweep.param == want,
            f"{self.kind} scenarios need a sweep over {want!r}",
        )
        _require(
            self.colocation is None, f"{self.kind} takes no colocation block"
        )
        _require(self.tiering is None, f"{self.kind} takes no tiering block")
        _require(self.sampling is None, f"{self.kind} takes no sampling block")
        self._check_sampling_template()

    def _check_period_sweep(self) -> None:
        self._check_axis()
        _require(len(self.workloads) >= 1, "period_sweep needs >= 1 workload")
        # the axis supplies every trial's period; pin the template to
        # the first axis value so the spec hash never covers a period
        # that did not run
        _require(
            self.settings.period == self.sweep.values[0],
            "period_sweep takes its periods from the sweep axis; set "
            "NMO_PERIOD to the first axis value",
        )

    def _check_single_workload_axis(self) -> None:
        self._check_axis()
        _require(
            len(self.workloads) == 1,
            f"{self.kind} sweeps exactly one workload",
        )
        _require(
            self.workloads[0].scale is not None,
            f"{self.kind} needs an explicit workload scale",
        )
        _require(self.trials == 1, f"{self.kind} supports a single trial")

    _check_aux_sweep = _check_single_workload_axis

    def _check_thread_sweep(self) -> None:
        self._check_single_workload_axis()
        # the axis IS the thread count; a pinned n_threads would be
        # silently ignored (and falsely enter the spec hash)
        _require(
            self.workloads[0].n_threads == 32,
            "thread_sweep sweeps the thread count; leave the workload's "
            "n_threads at its default",
        )

    def _check_colocation(self) -> None:
        _require(
            self.colocation is not None,
            "colocation scenarios need a colocation block",
        )
        _require(self.sweep is None, "colocation takes no sweep axis")
        _require(self.tiering is None, "colocation takes no tiering block")
        _require(
            self.sampling is None, "colocation takes no sampling block"
        )
        _require(
            not self.workloads,
            "colocation line-ups are derived from the colocation block; "
            "leave workloads empty",
        )
        _require(self.trials == 1, "colocation supports a single trial")
        self._check_sampling_template()

    def _check_tiering(self) -> None:
        _require(
            self.tiering is not None,
            "tiering scenarios need a tiering block",
        )
        _require(self.sweep is None, "tiering takes no sweep axis")
        _require(
            self.colocation is None, "tiering takes no colocation block"
        )
        _require(self.sampling is None, "tiering takes no sampling block")
        _require(
            len(self.workloads) == 1, "tiering profiles exactly one workload"
        )
        _require(
            self.workloads[0].scale is not None,
            "tiering needs an explicit workload scale",
        )
        _require(self.trials == 1, "tiering supports a single trial")
        _require(
            MACHINE_PRESETS[self.machine]().tiers is not None,
            f"tiering needs a tiered machine preset; {self.machine!r} "
            "declares no memory tiers (use tiered_altra_max or "
            "tiered_test_machine)",
        )
        self._check_sampling_template()

    def _check_profile(self) -> None:
        _require(self.sweep is None, "profile takes no sweep axis")
        _require(self.colocation is None, "profile takes no colocation block")
        _require(self.tiering is None, "profile takes no tiering block")
        _require(self.sampling is None, "profile takes no sampling block")
        _require(len(self.workloads) >= 1, "profile needs >= 1 workload")

    def _check_sampling_accuracy(self) -> None:
        _require(
            self.sampling is not None,
            "sampling_accuracy scenarios need a sampling block",
        )
        _require(self.sweep is None, "sampling_accuracy takes no sweep axis")
        _require(
            self.colocation is None,
            "sampling_accuracy takes no colocation block",
        )
        _require(
            self.tiering is None, "sampling_accuracy takes no tiering block"
        )
        _require(
            len(self.workloads) == 1,
            "sampling_accuracy profiles exactly one workload",
        )
        _require(
            self.workloads[0].scale is not None,
            "sampling_accuracy needs an explicit workload scale",
        )
        _require(
            self.trials == 1, "sampling_accuracy supports a single trial"
        )
        # the block supplies every trial's period; pin the template to
        # the first block value so the spec hash never covers a period
        # that did not run
        _require(
            self.settings.period == self.sampling.periods[0],
            "sampling_accuracy takes its periods from the sampling block; "
            "set NMO_PERIOD to the first block period",
        )
        self._check_sampling_template()

    # -- resolution -------------------------------------------------------

    def machine_spec(self) -> MachineSpec:
        """Instantiate the referenced machine preset."""
        return MACHINE_PRESETS[self.machine]()

    # -- serialization ----------------------------------------------------

    def to_dict(self) -> dict:
        out = {
            "name": self.name,
            "kind": self.kind,
            "machine": self.machine,
            "workloads": [w.to_dict() for w in self.workloads],
            "settings": self.settings.to_env(),
            "sweep": self.sweep.to_dict() if self.sweep else None,
            "colocation": (
                self.colocation.to_dict() if self.colocation else None
            ),
            "trials": self.trials,
            "seed": self.seed,
        }
        # the tiering key appears only when set: pre-tier scenario files
        # keep their exact canonical JSON, and therefore their spec hash
        if self.tiering is not None:
            out["tiering"] = self.tiering.to_dict()
        # same rule for the sampling block: pre-zoo files hash unchanged
        if self.sampling is not None:
            out["sampling"] = self.sampling.to_dict()
        return out

    @classmethod
    def from_dict(cls, d: dict) -> "ScenarioSpec":
        _check_keys(
            d,
            {"name", "kind"},
            {"machine", "workloads", "settings", "sweep", "colocation",
             "tiering", "sampling", "trials", "seed"},
            "scenario",
        )
        settings = d.get("settings")
        try:
            return cls._build_from_dict(d, settings)
        except (TypeError, ValueError) as e:
            # bare coercion failures (non-list sweep values, "three"
            # trials, ...) become the clean scenario error the CLI shows
            raise ScenarioError(f"malformed scenario value: {e}") from None

    @classmethod
    def _build_from_dict(cls, d: dict, settings) -> "ScenarioSpec":
        return cls(
            name=d["name"],
            kind=d["kind"],
            machine=d.get("machine", "ampere_altra_max"),
            workloads=tuple(
                WorkloadSpec.from_dict(w) for w in d.get("workloads") or ()
            ),
            settings=(
                NmoSettings.from_env(settings)
                if settings is not None
                else _default_settings()
            ),
            sweep=(
                SweepAxis.from_dict(d["sweep"])
                if d.get("sweep") is not None
                else None
            ),
            colocation=(
                ColocationSpec.from_dict(d["colocation"])
                if d.get("colocation") is not None
                else None
            ),
            tiering=(
                TieringSpec.from_dict(d["tiering"])
                if d.get("tiering") is not None
                else None
            ),
            sampling=(
                SamplingSpec.from_dict(d["sampling"])
                if d.get("sampling") is not None
                else None
            ),
            trials=int(d.get("trials", 1)),
            seed=int(d.get("seed", 0)),
        )

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        try:
            d = json.loads(text)
        except json.JSONDecodeError as e:
            raise ScenarioError(f"scenario is not valid JSON: {e}") from None
        return cls.from_dict(d)

    @classmethod
    def from_file(cls, path: str | Path) -> "ScenarioSpec":
        p = Path(path)
        try:
            text = p.read_text()
        except OSError as e:
            raise ScenarioError(f"cannot read scenario file {p}: {e}") from None
        return cls.from_json(text)

    def spec_hash(self) -> str:
        """SHA-256 over the canonical JSON rendering (provenance anchor)."""
        payload = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()
