"""Declarative scenarios: one front door for profile, sweep, and colo runs.

The paper's evaluation is a grid of scenarios — workload x NMO settings
x sweep axes x co-runners.  This package exposes that grid as data plus
one executor instead of one bespoke module per exhibit:

:class:`ScenarioSpec`
    A serializable description of one scenario (machine preset,
    workloads by registry name, :class:`~repro.nmo.env.NmoSettings`,
    optional sweep axis, optional co-location) with a lossless JSON
    round-trip and a content hash for provenance.
:class:`Session`
    Plans the spec's trial grid, routes every trial through
    :class:`~repro.orchestrate.ParallelRunner` and the result cache on
    one canonical cache-key path, and returns a :class:`RunReport`.
:class:`RunReport`
    Kind-shaped results plus provenance (spec hash, seed, scales,
    version); renders to text and dumps to JSON.
:mod:`~repro.scenarios.presets`
    The paper exhibits as named spec builders (``fig7`` ... ``fig10_fig11``,
    ``colo_interference``), behind ``python -m repro run <name>``.

Quickstart::

    from repro.scenarios import Session, load_scenario

    spec = load_scenario("fig8")            # or a path to a .json file
    report = Session(workers=4).run(spec)
    print(report.render())
    report.dump("fig8-report.json")

The legacy ``repro.evalharness`` figure functions are thin shims over
this package; new sweep/sharding/backend work should target
:class:`Session` directly.
"""

from repro.scenarios.presets import (
    FIG7_PERIODS,
    FIG8_PERIODS,
    FIG9_AUX_PAGES,
    FIG10_THREADS,
    SCENARIO_PRESETS,
    colo_interference_spec,
    fig7_spec,
    fig8_spec,
    fig9_spec,
    fig10_spec,
    load_scenario,
    named_scenario,
    quickstart_spec,
    sampling_zoo_spec,
    scenario_names,
    tiering_sweep_spec,
)
from repro.scenarios.report import render_results
from repro.scenarios.session import RunReport, Session
from repro.scenarios.spec import (
    KINDS,
    MACHINE_PRESETS,
    ColocationSpec,
    SamplingSpec,
    ScenarioSpec,
    SweepAxis,
    TieringSpec,
    WorkloadSpec,
)
from repro.scenarios.trials import (
    COLO_MIX,
    COLO_TIMELINE_SECONDS,
    EXPERIMENT_NAMES,
    SWEEP_SCALES,
    SweepPoint,
    colo_scenarios,
)

__all__ = [
    "COLO_MIX",
    "COLO_TIMELINE_SECONDS",
    "ColocationSpec",
    "EXPERIMENT_NAMES",
    "FIG10_THREADS",
    "FIG7_PERIODS",
    "FIG8_PERIODS",
    "FIG9_AUX_PAGES",
    "KINDS",
    "MACHINE_PRESETS",
    "RunReport",
    "SCENARIO_PRESETS",
    "SWEEP_SCALES",
    "SamplingSpec",
    "ScenarioSpec",
    "Session",
    "SweepAxis",
    "SweepPoint",
    "TieringSpec",
    "WorkloadSpec",
    "colo_interference_spec",
    "colo_scenarios",
    "fig10_spec",
    "fig7_spec",
    "fig8_spec",
    "fig9_spec",
    "load_scenario",
    "named_scenario",
    "quickstart_spec",
    "render_results",
    "sampling_zoo_spec",
    "scenario_names",
    "tiering_sweep_spec",
]
