"""Multi-host sharded profiling: agents, a coordinator, HTTP, quotas.

One :class:`~repro.serve.ProfilingServer` scales to one host's cores.
This package scales the *service* across hosts without changing what a
client sees:

:class:`ShardAgent`
    A profiling server (pool + scheduler + cache) that additionally
    answers ``cache_export`` / ``cache_import`` — one agent per host.
:class:`Coordinator`
    The front door: plans each submitted spec's full grid, enforces
    per-tenant quotas, shards the uncached trials across live agents
    by cache key, streams rows home, retries a dead agent's share on
    the survivors (then degrades to ``partial`` — never a hang), and
    rebuilds the final report from raw cache objects so the rendered
    output is byte-identical to a single-host
    :meth:`~repro.scenarios.Session.run`.
:class:`HttpGateway` / :class:`HttpClusterClient`
    An HTTP/JSON envelope over the same dispatch surface — ``POST
    /v1/jobs``, chunked NDJSON streaming — carrying the canonical
    protocol payloads byte-for-byte.
:class:`QuotaPolicy` / :class:`TokenBucket`
    Admission metering in trial tokens per tenant, rejected with
    structured ``quota_exceeded`` errors carrying ``retry_after_s``.
:class:`CacheReplicator` (with :func:`partition_indices`)
    Byte-exact entry movement that makes a cluster rerun a pure mmap
    cache replay on every host.

Start a two-host cluster in-process (tests do exactly this)::

    from repro.cluster import Coordinator, HttpGateway, ShardAgent
    from repro.serve import ServerClient

    with ShardAgent(workers=2) as a, ShardAgent(workers=2) as b:
        coord = Coordinator(agents=[a.address, b.address])
        with coord, HttpGateway(coord) as gw:
            with ServerClient(*coord.address) as client:
                outcome = client.run(my_spec)   # sharded across a and b

From the shell: ``python -m repro cluster agent --port 7124`` on each
host, then ``python -m repro cluster coordinator --agents
host1:7124,host2:7124 --http-port 8123`` (see ``docs/serving.md``).
"""

from repro.cluster.agent import ShardAgent
from repro.cluster.coordinator import Coordinator, DEFAULT_TENANT
from repro.cluster.http import STATUS_BY_CODE, HttpClusterClient, HttpGateway
from repro.cluster.journal import JobJournal, JobRecovery, read_journal, recover
from repro.cluster.membership import AGENT_STATES, AgentHandle, Membership
from repro.cluster.partition import partition_indices, shard_for_key
from repro.cluster.policy import DEFAULT_POLICY, Deadline, RetryPolicy
from repro.cluster.quota import QuotaPolicy, TokenBucket
from repro.cluster.replicate import CacheReplicator, decode_entry, encode_entry

__all__ = [
    "AGENT_STATES",
    "AgentHandle",
    "CacheReplicator",
    "Coordinator",
    "DEFAULT_POLICY",
    "DEFAULT_TENANT",
    "Deadline",
    "HttpClusterClient",
    "HttpGateway",
    "JobJournal",
    "JobRecovery",
    "Membership",
    "QuotaPolicy",
    "RetryPolicy",
    "STATUS_BY_CODE",
    "ShardAgent",
    "TokenBucket",
    "decode_entry",
    "encode_entry",
    "partition_indices",
    "read_journal",
    "recover",
    "shard_for_key",
]
