"""The coordinator's durable job journal: an NDJSON write-ahead log.

PR 9's coordinator held its whole job log in memory: a crash forgot
every admission and every landed trial, and a restart recomputed work
the cluster had already paid for.  :class:`JobJournal` makes the job
lifecycle durable with the cheapest storage that is actually safe:

* **One record per line.**  Each line is
  ``{"crc": <crc32>, "rec": {"type": ..., ...}}`` — canonical compact
  JSON (sorted keys), newline-terminated.  The CRC is computed over
  the canonical encoding of ``rec``, so any bit flip or torn write is
  detected on replay.
* **Atomic appends.**  The file is opened append-only and each record
  is a single buffered ``write`` under a lock, so concurrent shard
  threads never interleave partial lines.
* **fsync batching.**  Every :attr:`fsync_every` appends (and at every
  terminal job state) the file is fsynced; between syncs a crash can
  lose at most the last batch of *landing* records — which only costs
  re-verifying those indices against the cache, never correctness.
* **Torn-tail tolerance.**  :func:`read_journal` stops at the first
  record that fails CRC or JSON validation (a torn tail from the
  crash) and reports how many lines it dropped; everything before the
  tear is trusted.

Record types written by the coordinator:

``job_admitted``
    job id, canonical spec dict, tenant, priority, trial count —
    synced immediately, so an acked admission survives a crash.
``shard_assigned``
    which indices went to which agent in which round (observability;
    recovery does not depend on it).
``row_landed``
    one global index whose cache entry reached the *coordinator*
    cache — the same "done means in-coordinator-cache" bar the
    scheduler uses.  Journaled landings are never recomputed on
    resume.
``job_state``
    a terminal transition (``done``/``partial``/``failed``/
    ``cancelled``) with the error and lost indices when relevant —
    synced immediately.
``job_resumed``
    written by a ``--resume`` boot for each journaled job it re-adopts
    (so a second crash knows the history too).

:func:`recover` folds a record list into per-job
:class:`JobRecovery` snapshots the coordinator replays on boot.
"""

from __future__ import annotations

import json
import os
import threading
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

__all__ = ["JobJournal", "JobRecovery", "read_journal", "recover"]

#: record types a well-formed journal may contain
RECORD_TYPES = (
    "job_admitted",
    "shard_assigned",
    "row_landed",
    "job_state",
    "job_resumed",
)


def _canonical(rec: dict[str, Any]) -> str:
    return json.dumps(rec, sort_keys=True, separators=(",", ":"))


class JobJournal:
    """Append-only, CRC-checked NDJSON write-ahead log."""

    def __init__(self, path: str | os.PathLike, fsync_every: int = 16) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.fsync_every = max(1, int(fsync_every))
        self._f = open(self.path, "ab")
        self._lock = threading.Lock()
        self._since_sync = 0
        self.appended = 0  # records written by this process
        self.synced = 0    # explicit + batch fsyncs performed

    def append(self, rtype: str, sync: bool = False, **fields: Any) -> None:
        """Durably queue one record; ``sync=True`` forces the fsync."""
        assert rtype in RECORD_TYPES, rtype
        rec = {"type": rtype, **fields}
        line = (
            _canonical({"crc": zlib.crc32(_canonical(rec).encode()), "rec": rec})
            + "\n"
        ).encode("utf-8")
        with self._lock:
            if self._f.closed:
                return  # racing a shutdown: drop, never raise mid-stream
            self._f.write(line)
            self._f.flush()
            self.appended += 1
            self._since_sync += 1
            if sync or self._since_sync >= self.fsync_every:
                os.fsync(self._f.fileno())
                self._since_sync = 0
                self.synced += 1

    def sync(self) -> None:
        """Force an fsync of everything appended so far."""
        with self._lock:
            if self._f.closed:
                return
            self._f.flush()
            os.fsync(self._f.fileno())
            self._since_sync = 0
            self.synced += 1

    def close(self) -> None:
        with self._lock:
            if not self._f.closed:
                self._f.flush()
                os.fsync(self._f.fileno())
                self._f.close()

    def __enter__(self) -> "JobJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_journal(path: str | os.PathLike) -> tuple[list[dict[str, Any]], int]:
    """Replay a journal file: ``(records, dropped_lines)``.

    Validation stops at the first line that is not a CRC-clean record
    — everything after a tear is untrusted (the tear marks where the
    crash happened), so the remaining line count is reported as
    dropped.  A missing file is an empty journal.
    """
    path = Path(path)
    if not path.exists():
        return [], 0
    lines = path.read_bytes().splitlines()
    records: list[dict[str, Any]] = []
    for n, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            obj = json.loads(line.decode("utf-8"))
            rec = obj["rec"]
            crc = obj["crc"]
        except (UnicodeDecodeError, json.JSONDecodeError, KeyError, TypeError):
            return records, len(lines) - n
        if (
            not isinstance(rec, dict)
            or zlib.crc32(_canonical(rec).encode()) != crc
        ):
            return records, len(lines) - n
        records.append(rec)
    return records, 0


@dataclass
class JobRecovery:
    """One journaled job's folded state, ready to replay on boot."""

    job_id: str
    spec: dict[str, Any]
    tenant: str
    priority: int = 0
    trials: int = 0
    #: global indices journaled as landed in the coordinator cache
    landed: set[int] = field(default_factory=set)
    #: terminal state from a ``job_state`` record, else None (in-flight)
    state: str | None = None
    error: str | None = None
    lost: dict[int, str] = field(default_factory=dict)
    #: shard_assigned records seen (observability only)
    assignments: int = 0
    #: times a previous --resume boot already re-adopted this job
    resumes: int = 0

    @property
    def terminal(self) -> bool:
        return self.state is not None


def recover(records: list[dict[str, Any]]) -> dict[str, JobRecovery]:
    """Fold journal records into per-job recovery snapshots.

    Returns jobs in admission order (dict order).  Records for unknown
    job ids (admission lost to an unsynced batch) are ignored — their
    client never got an ack the coordinator is obliged to honor.
    """
    jobs: dict[str, JobRecovery] = {}
    for rec in records:
        rtype = rec.get("type")
        job_id = rec.get("job_id")
        if rtype == "job_admitted":
            if isinstance(job_id, str) and isinstance(rec.get("spec"), dict):
                jobs[job_id] = JobRecovery(
                    job_id=job_id,
                    spec=rec["spec"],
                    tenant=rec.get("tenant", "default"),
                    priority=int(rec.get("priority", 0)),
                    trials=int(rec.get("trials", 0)),
                )
            continue
        job = jobs.get(job_id)
        if job is None:
            continue
        if rtype == "row_landed":
            idx = rec.get("index")
            if isinstance(idx, int):
                job.landed.add(idx)
        elif rtype == "shard_assigned":
            job.assignments += 1
        elif rtype == "job_state":
            job.state = rec.get("state")
            job.error = rec.get("error")
            lost = rec.get("lost")
            if isinstance(lost, dict):
                job.lost = {int(k): str(v) for k, v in lost.items()}
        elif rtype == "job_resumed":
            job.resumes += 1
    return jobs
