"""Per-tenant token-bucket admission quotas for the coordinator.

A cluster is a shared resource; without admission control one tenant's
scripted resubmit loop starves everyone else at the coordinator before
fairness at the scheduler level can help.  :class:`QuotaPolicy` keeps
one token bucket per tenant: a submit costs as many tokens as the
job's *trial-grid size* (a 500-trial sweep spends 500, a 3-trial smoke
spends 3 — quotas meter work, not requests), buckets refill
continuously at ``refill_per_s``, and a submit that cannot afford its
cost is rejected immediately with a structured
:class:`~repro.errors.QuotaExceededError` carrying ``retry_after_s``
so well-behaved clients can back off precisely instead of polling.

The clock is injectable (defaults to :func:`time.monotonic`) so tests
drive refill deterministically without sleeping.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.errors import QuotaExceededError


class TokenBucket:
    """One tenant's bucket: ``capacity`` burst, ``refill_per_s`` sustained.

    Tokens accrue lazily at read time from the injected monotonic
    clock; the bucket starts full (a new tenant gets its burst
    immediately).
    """

    def __init__(
        self,
        capacity: float,
        refill_per_s: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        if refill_per_s <= 0:
            raise ValueError(f"refill_per_s must be > 0, got {refill_per_s}")
        self.capacity = float(capacity)
        self.refill_per_s = float(refill_per_s)
        self._clock = clock
        self._tokens = float(capacity)
        self._stamp = clock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(
            self.capacity,
            self._tokens + (now - self._stamp) * self.refill_per_s,
        )
        self._stamp = now

    @property
    def tokens(self) -> float:
        """Tokens available right now (refilled to the current clock)."""
        self._refill()
        return self._tokens

    def try_spend(self, cost: float) -> bool:
        """Spend ``cost`` tokens if affordable; False leaves the bucket
        untouched."""
        self._refill()
        if cost > self._tokens:
            return False
        self._tokens -= cost
        return True

    def retry_after(self, cost: float) -> float:
        """Seconds until ``cost`` tokens will be affordable (0 if now).

        Costs beyond :attr:`capacity` can never be afforded; the wait
        to a *full* bucket is reported so callers still get a finite,
        meaningful number.
        """
        self._refill()
        deficit = min(cost, self.capacity) - self._tokens
        return max(0.0, deficit / self.refill_per_s)


class QuotaPolicy:
    """Tenant-keyed admission gate the coordinator consults per submit.

    One bucket per tenant name, created on first sight with the shared
    ``capacity``/``refill_per_s`` (homogeneous tenants keep the policy
    a pure config value; heterogeneous limits would live in a config
    file, not here).  Thread-safe: protocol handler threads admit
    concurrently.
    """

    def __init__(
        self,
        capacity: float = 64.0,
        refill_per_s: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.capacity = float(capacity)
        self.refill_per_s = float(refill_per_s)
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}
        self._lock = threading.Lock()

    def bucket(self, tenant: str) -> TokenBucket:
        """The tenant's bucket (created full on first use)."""
        with self._lock:
            if tenant not in self._buckets:
                self._buckets[tenant] = TokenBucket(
                    self.capacity, self.refill_per_s, clock=self._clock
                )
            return self._buckets[tenant]

    def admit(self, tenant: str, cost: float) -> None:
        """Spend ``cost`` from the tenant's bucket or raise.

        The raised :class:`~repro.errors.QuotaExceededError` carries
        ``tenant``/``cost``/``available``/``retry_after_s`` — the wire
        error a client needs to schedule a precise retry.
        """
        bucket = self.bucket(tenant)
        with self._lock:
            if bucket.try_spend(cost):
                return
            available = bucket.tokens
            retry_after = bucket.retry_after(cost)
        raise QuotaExceededError(
            f"tenant {tenant!r} is over quota: job costs {cost:g} trial "
            f"token(s), {available:g} available; retry in "
            f"{retry_after:.1f}s",
            tenant=tenant,
            cost=cost,
            available=round(available, 3),
            retry_after_s=round(retry_after, 3),
        )

    def snapshot(self) -> dict[str, float]:
        """Tenant -> available tokens (what the coordinator's ping shows)."""
        with self._lock:
            buckets = dict(self._buckets)
        return {name: round(b.tokens, 3) for name, b in sorted(buckets.items())}
