"""The shard agent: one host's worker in a profiling cluster.

A :class:`ShardAgent` *is* a
:class:`~repro.serve.ProfilingServer` — same worker pool, same fair
scheduler, same cache, same socket protocol — extended with exactly
what cluster membership requires:

* it always owns a :class:`~repro.orchestrate.ResultCache` (created in
  a private temporary directory when none is given), because cache
  replication is what makes cluster reruns pure replays;
* two extra protocol ops, ``cache_export`` / ``cache_import``, moving
  raw entry bytes for :class:`~repro.cluster.CacheReplicator`;
* a ``ping`` that identifies its role and reports session cache
  counters (``cache_hits_mmap`` et al.), which is how the CI
  cluster-smoke job proves a replicated rerun touched no worker.

The coordinator drives agents purely through the public protocol —
``submit`` with ``trial_indices`` for its shard of a grid, ``stream``
to collect rows — so an agent is equally usable standalone: any
:class:`~repro.serve.ServerClient` pointed at it sees a normal
profiling server that happens to answer two extra ops.
"""

from __future__ import annotations

import tempfile
from typing import Any

from repro.errors import ServeError
from repro.machine.spec import MachineSpec
from repro.orchestrate import ResultCache
from repro.serve import protocol
from repro.serve.server import ProfilingServer
from repro.cluster import replicate


class ShardAgent(ProfilingServer):
    """A cache-replicating profiling server for cluster membership."""

    OPS: tuple[str, ...] = protocol.OPS + ("cache_export", "cache_import")

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        cache: ResultCache | None = None,
        machine: MachineSpec | None = None,
        queue_limit: int = 16,
        max_retries: int = 1,
    ) -> None:
        self._tmpdir: tempfile.TemporaryDirectory | None = None
        if cache is None:
            self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-shard-")
            cache = ResultCache(self._tmpdir.name)
        super().__init__(
            host=host,
            port=port,
            workers=workers,
            cache=cache,
            machine=machine,
            queue_limit=queue_limit,
            max_retries=max_retries,
        )

    def _stop_components(self) -> None:
        super()._stop_components()
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None

    # -- replication ops ---------------------------------------------------

    @staticmethod
    def _require_key(params: dict[str, Any]) -> str:
        key = params.get("key")
        if not isinstance(key, str) or not key:
            raise ServeError("request needs a string cache key")
        return key

    def _op_cache_export(self, params: dict[str, Any]) -> dict[str, Any]:
        key = self._require_key(params)
        try:
            pkl, cols = self.cache.export_entry(key)
        except KeyError:
            raise ServeError(
                f"cache entry {key!r} not held by this agent", key=key
            ) from None
        return protocol.ok_response(key=key, **replicate.encode_entry(pkl, cols))

    def _op_cache_import(self, params: dict[str, Any]) -> dict[str, Any]:
        key = self._require_key(params)
        if self.cache.contains(key):
            # idempotent fast path: identical bytes are already here
            return protocol.ok_response(key=key, imported=False)
        pkl, cols = replicate.decode_entry(params)
        self.cache.import_entry(key, pkl, cols)
        return protocol.ok_response(key=key, imported=True)

    # -- identity ----------------------------------------------------------

    def _op_ping(self, params: dict[str, Any]) -> dict[str, Any]:
        info = super()._op_ping(params)
        info["role"] = "shard-agent"
        # cumulative cache counters (stats.json totals plus the not-yet
        # flushed session tail) under cache_* names: what the cluster
        # smoke asserts on to prove a rerun was a pure mmap replay
        totals = self.cache.persistent_stats()
        for k, v in self.cache.stats.as_dict().items():
            totals[k] += v
        info.update({f"cache_{k}": v for k, v in totals.items()})
        return info
