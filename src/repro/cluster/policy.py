"""Cluster-facing re-export of the unified retry/deadline policy.

The policy lives in :mod:`repro.serve.policy` because
:class:`~repro.serve.ServerClient` (a serve-layer citizen) consumes it
and ``repro.serve`` must not import from ``repro.cluster``.  Cluster
code imports it from here so the dependency direction stays
cluster → serve.
"""

from __future__ import annotations

from repro.serve.policy import DEFAULT_POLICY, Deadline, RetryPolicy

__all__ = ["DEFAULT_POLICY", "Deadline", "RetryPolicy"]
