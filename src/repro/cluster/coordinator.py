"""The cluster coordinator: one front door over many shard agents.

A :class:`Coordinator` speaks the exact same client-facing protocol as
a single-host :class:`~repro.serve.ProfilingServer` — same ops, same
payload shapes, same streaming semantics — but behind ``submit`` it
owns no worker pool at all.  Instead it:

1. **Plans** the full trial grid locally (the same
   :meth:`~repro.scenarios.Session.plan` every other runner uses, so
   cache keys are identical cluster-wide),
2. **Admits** through per-tenant token-bucket quotas
   (:class:`~repro.cluster.QuotaPolicy`) and the bounded job queue,
   journaling the admission durably when a job journal is attached,
3. **Resolves** coordinator-cache hits immediately (a fully-cached
   spec never touches an agent),
4. **Shards** the remaining indices across live agents by cache key
   (:func:`~repro.cluster.partition_indices`) and submits each shard
   as a ``trial_indices`` sub-grid job, streaming rows back and
   landing them under the *global* index,
5. **Re-plans** the pending indices whenever cluster membership
   changes mid-round — the :class:`~repro.cluster.Membership` epoch is
   snapshotted per sharding round, and a join/leave/death aborts the
   round's in-flight shards so the next round spreads the remaining
   work over the *current* live set (a dead agent's share also retries
   this way: bounded rounds, then the job degrades to ``partial`` with
   the loss recorded — never a hang),
6. **Replicates** each freshly-computed cache entry — pulled from the
   shard that computed it, pushed to every other agent — so one
   cluster run leaves every host able to replay the whole spec from
   mmap, and
7. **Rebuilds** the final report from raw cache objects (not from the
   JSON rows that crossed the wire), which is what makes the rendered
   report *byte-identical* to a single-host
   :meth:`~repro.scenarios.Session.run` of the same spec.

Resilience: an attached :class:`~repro.cluster.JobJournal` records
admissions, shard assignments, per-index landings, and terminal
states; a coordinator restarted with ``resume=True`` replays the
journal, re-admits every non-terminal job under its original id, and
finishes it against the cache — journaled-as-landed indices are cache
hits, so nothing already paid for is recomputed.  All client-side
timeouts, retries, and backoff come from one injected
:class:`~repro.cluster.RetryPolicy`.

Determinism: results and the report are assembled positionally in plan
order regardless of which shard answered first; only the row *event*
order (what a ``stream`` client sees) depends on timing, exactly as it
does on a single host with more than one worker.
"""

from __future__ import annotations

import os
import tempfile
import threading
from typing import Any

from repro.errors import ServeError
from repro.machine.spec import MachineSpec
from repro.orchestrate import ResultCache, cache_key
from repro.scenarios.session import Session
from repro.scenarios.spec import ScenarioSpec
from repro.serve import protocol
from repro.serve.policy import DEFAULT_POLICY, RetryPolicy
from repro.serve.queue import Job, JobQueue
from repro.serve.server import ServerBase
from repro.cluster.journal import JobJournal, read_journal, recover
from repro.cluster.membership import AgentHandle, Membership
from repro.cluster.partition import partition_indices
from repro.cluster.quota import QuotaPolicy
from repro.cluster.replicate import CacheReplicator

__all__ = ["AgentHandle", "Coordinator", "DEFAULT_TENANT"]

_MISS = object()

#: default tenant bucket for submits that don't name one
DEFAULT_TENANT = "default"


class Coordinator(ServerBase):
    """Sharded profiling service over registered :class:`ShardAgent`\\ s.

    ``agents`` is a list of ``(host, port)`` addresses; each is
    version-handshaked at :meth:`start`.  ``cache`` is the
    coordinator's own result cache (a private temporary directory when
    omitted) — it is both the admission fast path and the replication
    hub.  ``max_retries`` bounds how many times a failed shard's
    indices are re-sharded onto surviving agents; membership-change
    re-plans are budgeted separately (:attr:`max_replans`).

    ``policy`` governs every outbound client op (timeouts, retries,
    backoff).  ``probe_interval_s`` enables the background health
    prober.  ``journal`` (a path or :class:`JobJournal`) makes the job
    lifecycle durable; ``resume=True`` replays it at :meth:`start`.
    """

    OPS = protocol.OPS + ("agents_join", "agents_leave", "agents_status")

    #: bound on membership-change re-plans per job (vs. flapping agents)
    max_replans = 16

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        agents: list[tuple[str, int]] | None = None,
        cache: ResultCache | None = None,
        machine: MachineSpec | None = None,
        queue_limit: int = 16,
        max_retries: int = 1,
        quota: QuotaPolicy | None = None,
        replicate: bool = True,
        policy: RetryPolicy | None = None,
        probe_interval_s: float | None = None,
        suspect_after: int = 1,
        dead_after: int = 3,
        journal: JobJournal | str | os.PathLike | None = None,
        resume: bool = False,
    ) -> None:
        super().__init__(host, port)
        self.queue = JobQueue(limit=queue_limit)
        self.session = Session(machine=machine)
        self._tmpdir: tempfile.TemporaryDirectory | None = None
        if cache is None:
            self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-coord-")
            cache = ResultCache(self._tmpdir.name)
        self.cache = cache
        self.machine = machine
        self.max_retries = max_retries
        self.quota = quota
        #: the one retry/deadline policy every outbound op obeys
        self.policy = policy or DEFAULT_POLICY
        #: push the full entry set to every agent after a job completes
        #: (the pull into the coordinator's own cache always happens —
        #: the final report is rebuilt from it)
        self.replicate = replicate
        self.replicator = CacheReplicator(cache, policy=self.policy)
        self.membership = Membership(
            agents=agents,
            policy=self.policy,
            probe_interval_s=probe_interval_s,
            suspect_after=suspect_after,
            dead_after=dead_after,
        )
        if journal is not None and not isinstance(journal, JobJournal):
            journal = JobJournal(journal)
        self.journal = journal
        self._resume = resume
        self.resumed_jobs = 0
        self._threads: list[threading.Thread] = []
        self._lock = threading.Lock()
        self.trials_executed = 0  # trials agents computed for us
        self.trials_cached = 0    # trials answered from caches (any host)

    # -- membership --------------------------------------------------------

    @property
    def agents(self) -> list[AgentHandle]:
        """Every known agent handle (all states), registration order."""
        return self.membership.handles()

    def register(self, host: str, port: int) -> AgentHandle:
        """Add (and handshake) one agent; returns its handle."""
        return self.membership.add(host, port)

    def _handshake(self, handle: AgentHandle) -> None:
        """Version-check one agent; a skewed or dead peer never joins."""
        self.membership.handshake(handle)

    def live_agents(self) -> list[AgentHandle]:
        return self.membership.live()

    def _op_agents_join(self, params: dict[str, Any]) -> dict[str, Any]:
        """Admit (or revive) an agent at runtime; handshakes it first."""
        host, port = self._agent_addr(params)
        handle = self.membership.add(host, port)
        return protocol.ok_response(
            agent=handle.describe(), epoch=self.membership.epoch
        )

    def _op_agents_leave(self, params: dict[str, Any]) -> dict[str, Any]:
        """Deregister an agent: state ``left``, never auto-revived."""
        host, port = self._agent_addr(params)
        handle = self.membership.leave(host, port)
        return protocol.ok_response(
            agent=handle.describe(), epoch=self.membership.epoch
        )

    def _op_agents_status(self, _params: dict[str, Any]) -> dict[str, Any]:
        """The membership table, epoch, and prober configuration."""
        return protocol.ok_response(
            agents=self.membership.snapshot(),
            epoch=self.membership.epoch,
            probes=self.membership.probes,
            probe_interval_s=self.membership.probe_interval_s,
            suspect_after=self.membership.suspect_after,
            dead_after=self.membership.dead_after,
        )

    @staticmethod
    def _agent_addr(params: dict[str, Any]) -> tuple[str, int]:
        host = params.get("host")
        port = params.get("port")
        if not isinstance(host, str) or not host:
            raise ServeError("agent op needs a host string")
        if not isinstance(port, int) or not (0 < port < 65536):
            raise ServeError("agent op needs a port in 1..65535")
        return host, port

    def _start_components(self) -> None:
        self.membership.handshake_all()
        self.membership.start()
        if self._resume and self.journal is not None:
            self._resume_journal()

    def _stop_components(self) -> None:
        self.membership.stop()
        for t in self._threads:
            t.join(timeout=5.0)
        if self.journal is not None:
            self.journal.close()
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None

    # -- journaling --------------------------------------------------------

    def _journal_append(self, rtype: str, sync: bool = False, **fields) -> None:
        if self.journal is not None:
            self.journal.append(rtype, sync=sync, **fields)

    def _journal_landings(self, job: Job, indices: list[int]) -> None:
        """Record the indices whose entries reached the coordinator cache."""
        if self.journal is None:
            return
        for idx in indices:
            if self.cache.contains(job.keys[idx]):
                self.journal.append(
                    "row_landed", job_id=job.id, index=idx, key=job.keys[idx]
                )

    def _journal_terminal(self, job: Job) -> None:
        if self.journal is None or not job.is_terminal():
            return
        with job.cond:
            state, error = job.state, job.error
            lost = {str(k): v for k, v in job.lost.items()}
        self.journal.append(
            "job_state", sync=True,
            job_id=job.id, state=state, error=error, lost=lost,
        )

    def _resume_journal(self) -> None:
        """Replay the journal: re-adopt every journaled job on boot.

        Terminal ``failed``/``cancelled`` jobs are restored as-is (a
        spec that failed is not silently retried; a cancellation is
        user intent).  Everything else — in-flight, ``done``,
        ``partial`` — is re-driven through the normal dispatcher: the
        cache fast path lands every journaled (= cached) index without
        recomputation, only genuinely missing trials reach an agent,
        and the report is rebuilt byte-identically from raw cache
        objects.
        """
        assert self.journal is not None
        records, dropped = read_journal(self.journal.path)
        for job_id, rec in recover(records).items():
            try:
                spec = ScenarioSpec.from_dict(rec.spec)
                trial_specs = self.session.plan(spec)
            except Exception as e:
                self._journal_append(
                    "job_resumed", job_id=job_id, ok=False,
                    error=f"unplannable journaled spec: {e}",
                )
                continue
            keys = [
                cache_key(t.experiment, t.config, t.seed) for t in trial_specs
            ]
            job = self.queue.submit(
                spec, trial_specs, keys,
                priority=rec.priority, job_id=job_id, force=True,
            )
            self._journal_append(
                "job_resumed", job_id=job_id, ok=True,
                landed=len(rec.landed), prior_state=rec.state,
            )
            if rec.state in ("failed", "cancelled"):
                with job.cond:
                    job.error = rec.error
                job.set_state(rec.state)
                continue
            self.resumed_jobs += 1
            self._spawn_dispatcher(job)
        if dropped:
            self.journal.sync()  # the torn tail is now truncated history

    # -- admission ---------------------------------------------------------

    def _op_submit(self, params: dict[str, Any]) -> dict[str, Any]:
        spec_dict = params.get("spec")
        if not isinstance(spec_dict, dict):
            raise ServeError("submit needs a spec object")
        spec = ScenarioSpec.from_dict(spec_dict)
        priority = params.get("priority", 0)
        if not isinstance(priority, int):
            raise ServeError("priority must be an integer")
        tenant = params.get("tenant", DEFAULT_TENANT)
        if not isinstance(tenant, str) or not tenant:
            raise ServeError("tenant must be a non-empty string")
        trial_specs = self.session.plan(spec)
        keys = [
            cache_key(t.experiment, t.config, t.seed) for t in trial_specs
        ]
        if self.quota is not None:
            self.quota.admit(tenant, len(trial_specs))
        job = self.queue.submit(spec, trial_specs, keys, priority=priority)
        # synced before the ack: an admission the client saw survives a
        # coordinator crash
        self._journal_append(
            "job_admitted", sync=True,
            job_id=job.id, spec=spec.to_dict(), tenant=tenant,
            priority=priority, trials=job.total,
        )
        self._spawn_dispatcher(job)
        return protocol.ok_response(
            job_id=job.id,
            state=job.state,
            trials=job.total,
            spec_hash=spec.spec_hash(),
            tenant=tenant,
        )

    def _spawn_dispatcher(self, job: Job) -> None:
        worker = threading.Thread(
            target=self._run_job,
            args=(job,),
            name=f"cluster-job-{job.id}",
            daemon=True,
        )
        with self._lock:
            self._threads = [t for t in self._threads if t.is_alive()]
            self._threads.append(worker)
        worker.start()

    # -- the per-job dispatcher --------------------------------------------

    def _run_job(self, job: Job) -> None:
        """Drive one job to a terminal state (runs in its own thread)."""
        try:
            self._shard_and_collect(job)
        except Exception as e:  # a bug must surface as failed, not a hang
            with job.cond:
                job.error = f"coordinator error: {type(e).__name__}: {e}"
            job.set_state("failed")
        finally:
            self._journal_terminal(job)

    def _shard_and_collect(self, job: Job) -> None:
        job.set_state("running")
        if job.is_terminal():  # cancelled before the dispatcher ran
            return
        # coordinator-cache fast path: raw objects land directly
        pending: list[int] = []
        for idx in range(job.total):
            hit = self.cache.get(job.keys[idx], _MISS)
            if hit is _MISS:
                pending.append(idx)
            else:
                with self._lock:
                    self.trials_cached += 1
                job.land_row(idx, hit, cached=True)
                self._journal_append(
                    "row_landed", job_id=job.id, index=idx, key=job.keys[idx]
                )
        with job.cond:
            job.pending = list(pending)

        rounds = 0
        replans = 0
        while pending and not job.is_terminal():
            # epoch first: a change between these two reads surfaces as
            # a mid-round mismatch and re-plans, never goes unseen
            epoch = self.membership.epoch
            agents = self.live_agents()
            if not agents:
                break
            shards = partition_indices(job.keys, pending, len(agents))
            results: list[list[int]] = [[] for _ in agents]
            threads = []
            for ai, (agent, assigned) in enumerate(zip(agents, shards)):
                if not assigned:
                    continue
                self._journal_append(
                    "shard_assigned", job_id=job.id,
                    agent=f"{agent.host}:{agent.port}", indices=assigned,
                )
                t = threading.Thread(
                    target=self._run_shard,
                    args=(job, agent, assigned, results, ai, epoch),
                    name=f"{job.id}-shard-{ai}",
                    daemon=True,
                )
                threads.append(t)
                t.start()
            for t in threads:
                t.join()
            # an index is done only once its entry reached the
            # coordinator cache: a row streamed from an agent that died
            # before the pull must retry, or the final rebuild would
            # hit a replication hole
            landed = {i for chunk in results for i in chunk}
            pending = [
                i
                for i in pending
                if i not in landed or not self.cache.contains(job.keys[i])
            ]
            with job.cond:
                job.pending = list(pending)
            if not pending:
                break
            if self.membership.epoch != epoch and replans < self.max_replans:
                # membership changed mid-round (join, leave, death,
                # probe verdict): re-plan over the current live set
                # without spending a failure retry
                replans += 1
                continue
            rounds += 1
            if rounds > self.max_retries:
                break

        self._finish(job, pending)

    def _run_shard(
        self,
        job: Job,
        agent: AgentHandle,
        indices: list[int],
        results: list[list[int]],
        slot: int,
        epoch: int | None = None,
    ) -> None:
        """Submit one shard sub-grid to one agent and stream it home.

        Landed global indices are recorded in ``results[slot]``; any
        exception marks the agent dead and leaves its unlanded indices
        for the next round — fault handling is by omission, so a crash
        here can only cost retries, never correctness.  A membership
        epoch change mid-stream cancels the remote sub-job and bails
        out early; whatever already landed is pulled home and the rest
        re-plans with the new membership.
        """
        landed = results[slot]
        sub_id = None
        try:
            with agent.client(self.policy) as client:
                ack = client.submit(job.spec, trial_indices=indices)
                sub_id = ack["job_id"]
                for event in client.stream(sub_id):
                    if job.is_terminal():
                        self._cancel_remote(agent, sub_id)
                        return
                    if (
                        epoch is not None
                        and self.membership.epoch != epoch
                    ):
                        self._cancel_remote(agent, sub_id)
                        break  # re-plan; landed entries still pull home
                    if event.get("event") == "row":
                        gidx = indices[event["index"]]
                        job.land_row(gidx, event["row"], event["cached"])
                        landed.append(gidx)
                        with self._lock:
                            if event["cached"]:
                                self.trials_cached += 1
                            else:
                                self.trials_executed += 1
                    elif event.get("event") == "end":
                        # partial/failed sub-job: unlanded indices retry
                        # elsewhere, like any other shard loss
                        break
            # the pull is not optional: the final report is rebuilt
            # from raw coordinator-cache objects, so every computed
            # entry must come home (``replicate`` gates only the
            # peer push; entries the agent never computed are skipped)
            self._pull_shard(agent, job, indices)
            self._journal_landings(job, landed)
        except (ServeError, OSError, ConnectionError, KeyError):
            # fault handling is by omission: the agent is marked dead
            # and this shard's unlanded indices retry on the survivors
            self.membership.mark_dead(agent, reason="shard dispatch failed")

    def _cancel_remote(self, agent: AgentHandle, sub_id: str) -> None:
        """Best-effort cancel of a shard sub-job (cluster job cancelled)."""
        try:
            with agent.client(self.membership.probe_policy) as control:
                control.cancel(sub_id)
        except (ServeError, OSError, ConnectionError):
            pass

    def _pull_shard(
        self, agent: AgentHandle, job: Job, indices: list[int]
    ) -> None:
        """Replicate a finished shard's entries into the coordinator cache."""
        keys = [job.keys[i] for i in indices]
        with agent.client(self.policy) as client:
            self.replicator.pull(client, keys)

    # -- completion --------------------------------------------------------

    def _finish(self, job: Job, unlanded: list[int]) -> None:
        if job.is_terminal():  # cancelled mid-flight
            return
        if unlanded:
            with job.cond:
                for idx in unlanded:
                    job.lost.setdefault(idx, "no live agent could run it")
                job.error = (
                    f"{len(unlanded)} of {job.total} trials lost: "
                    f"{len(self.live_agents())} live agent(s) after retries"
                )
            job.set_state("partial")
            return
        if self.replicate:
            self._push_all(job)
        # parity-critical: rebuild rows from raw cache objects — the
        # streamed rows were JSON-safe renderings, and the report must
        # be byte-identical to a single-host Session.run of the spec
        raw = [self.cache.get(key, _MISS) for key in job.keys]
        missing = [i for i, r in enumerate(raw) if r is _MISS]
        if missing:
            with job.cond:
                job.error = (
                    f"replication hole: {len(missing)} computed entr"
                    f"{'y' if len(missing) == 1 else 'ies'} missing from the "
                    "coordinator cache"
                )
            job.set_state("failed")
            return
        job.report = self.session.build_report(
            job.spec,
            raw,
            execution={
                "agents": len(self.agents),
                "live_agents": len(self.live_agents()),
                "total_trials": job.total,
                "cache_hits": job.cached,
                "executed": job.total - job.cached,
                "cached": True,
                "replicated": self.replicate,
            },
        )
        job.set_state("done")
        self.cache.flush_stats()

    def _push_all(self, job: Job) -> None:
        """Publish the job's full entry set to every live agent."""
        for agent in self.live_agents():
            try:
                with agent.client(self.policy) as client:
                    self.replicator.push(client, job.keys)
            except (ServeError, OSError, ConnectionError):
                # replication never fails a done job
                self.membership.mark_dead(agent, reason="push failed")

    # -- deterministic results ---------------------------------------------

    def _op_results(self, params: dict[str, Any]) -> dict[str, Any]:
        """Results with rows reassembled in plan order.

        Which shard answers first is timing; the *results* a client
        fetches after the fact must not be.  Sorting by global trial
        index makes the results payload identical between a first
        cluster run, a replayed run, and a single-host run of the same
        spec (streamed event order remains landing order, exactly as on
        a single host with several workers).
        """
        response = super()._op_results(params)
        if response.get("ok"):
            response["rows"] = sorted(
                response["rows"], key=lambda r: r["index"]
            )
        return response

    # -- liveness ----------------------------------------------------------

    def _op_ping(self, _params: dict[str, Any]) -> dict[str, Any]:
        return protocol.ok_response(
            protocol=protocol.PROTOCOL_VERSION,
            role="coordinator",
            agents=self.membership.snapshot(),
            membership_epoch=self.membership.epoch,
            probe_interval_s=self.membership.probe_interval_s,
            active_jobs=self.queue.active_count(),
            queue_limit=self.queue.limit,
            trials_executed=self.trials_executed,
            trials_cached=self.trials_cached,
            resumed_jobs=self.resumed_jobs,
            journal=(
                None if self.journal is None else str(self.journal.path)
            ),
            cached=True,
            replicate=self.replicate,
            quota=(
                None if self.quota is None
                else {
                    "capacity": self.quota.capacity,
                    "refill_per_s": self.quota.refill_per_s,
                    "tenants": self.quota.snapshot(),
                }
            ),
        )
