"""The cluster coordinator: one front door over many shard agents.

A :class:`Coordinator` speaks the exact same client-facing protocol as
a single-host :class:`~repro.serve.ProfilingServer` — same ops, same
payload shapes, same streaming semantics — but behind ``submit`` it
owns no worker pool at all.  Instead it:

1. **Plans** the full trial grid locally (the same
   :meth:`~repro.scenarios.Session.plan` every other runner uses, so
   cache keys are identical cluster-wide),
2. **Admits** through per-tenant token-bucket quotas
   (:class:`~repro.cluster.QuotaPolicy`) and the bounded job queue,
3. **Resolves** coordinator-cache hits immediately (a fully-cached
   spec never touches an agent),
4. **Shards** the remaining indices across live agents by cache key
   (:func:`~repro.cluster.partition_indices`) and submits each shard
   as a ``trial_indices`` sub-grid job, streaming rows back and
   landing them under the *global* index,
5. **Retries** the indices of a dead or unreachable agent on the
   remaining shards (agent loss mirrors worker loss one level down:
   bounded retries, then the job degrades to ``partial`` with the loss
   recorded — never a hang),
6. **Replicates** each freshly-computed cache entry — pulled from the
   shard that computed it, pushed to every other agent — so one
   cluster run leaves every host able to replay the whole spec from
   mmap, and
7. **Rebuilds** the final report from raw cache objects (not from the
   JSON rows that crossed the wire), which is what makes the rendered
   report *byte-identical* to a single-host
   :meth:`~repro.scenarios.Session.run` of the same spec.

Determinism: results and the report are assembled positionally in plan
order regardless of which shard answered first; only the row *event*
order (what a ``stream`` client sees) depends on timing, exactly as it
does on a single host with more than one worker.
"""

from __future__ import annotations

import tempfile
import threading
from typing import Any

from repro.errors import ClusterError, ServeError
from repro.machine.spec import MachineSpec
from repro.orchestrate import ResultCache, cache_key
from repro.scenarios.session import Session
from repro.scenarios.spec import ScenarioSpec
from repro.serve import protocol
from repro.serve.client import ServerClient
from repro.serve.queue import Job, JobQueue
from repro.serve.server import ServerBase
from repro.cluster.partition import partition_indices
from repro.cluster.quota import QuotaPolicy
from repro.cluster.replicate import CacheReplicator

_MISS = object()

#: default tenant bucket for submits that don't name one
DEFAULT_TENANT = "default"


class AgentHandle:
    """One registered shard agent: address, health, and client factory."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = int(port)
        self.alive = True

    def client(self, timeout: float | None = 60.0) -> ServerClient:
        """A fresh connection (streams and control ops never share one)."""
        return ServerClient(self.host, self.port, timeout=timeout)

    def describe(self) -> dict[str, Any]:
        return {"host": self.host, "port": self.port, "alive": self.alive}


class Coordinator(ServerBase):
    """Sharded profiling service over registered :class:`ShardAgent`\\ s.

    ``agents`` is a list of ``(host, port)`` addresses; each is
    version-handshaked at :meth:`start`.  ``cache`` is the
    coordinator's own result cache (a private temporary directory when
    omitted) — it is both the admission fast path and the replication
    hub.  ``max_retries`` bounds how many times a failed shard's
    indices are re-sharded onto surviving agents.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        agents: list[tuple[str, int]] | None = None,
        cache: ResultCache | None = None,
        machine: MachineSpec | None = None,
        queue_limit: int = 16,
        max_retries: int = 1,
        quota: QuotaPolicy | None = None,
        replicate: bool = True,
    ) -> None:
        super().__init__(host, port)
        self.queue = JobQueue(limit=queue_limit)
        self.session = Session(machine=machine)
        self._tmpdir: tempfile.TemporaryDirectory | None = None
        if cache is None:
            self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-coord-")
            cache = ResultCache(self._tmpdir.name)
        self.cache = cache
        self.machine = machine
        self.max_retries = max_retries
        self.quota = quota
        #: push the full entry set to every agent after a job completes
        #: (the pull into the coordinator's own cache always happens —
        #: the final report is rebuilt from it)
        self.replicate = replicate
        self.replicator = CacheReplicator(cache)
        self.agents: list[AgentHandle] = [
            AgentHandle(h, p) for h, p in (agents or [])
        ]
        self._threads: list[threading.Thread] = []
        self._lock = threading.Lock()
        self.trials_executed = 0  # trials agents computed for us
        self.trials_cached = 0    # trials answered from caches (any host)

    # -- membership --------------------------------------------------------

    def register(self, host: str, port: int) -> AgentHandle:
        """Add (and handshake) one agent; returns its handle."""
        handle = AgentHandle(host, port)
        self._handshake(handle)
        with self._lock:
            self.agents.append(handle)
        return handle

    def _handshake(self, handle: AgentHandle) -> None:
        """Version-check one agent; a skewed or dead peer never joins."""
        try:
            with handle.client(timeout=10.0) as client:
                client.handshake()
        except ServeError as e:
            raise ClusterError(
                f"agent {handle.host}:{handle.port} cannot join: {e}",
                code=e.code,
                host=handle.host,
                port=handle.port,
            ) from e

    def live_agents(self) -> list[AgentHandle]:
        with self._lock:
            return [a for a in self.agents if a.alive]

    def _start_components(self) -> None:
        for handle in list(self.agents):
            self._handshake(handle)

    def _stop_components(self) -> None:
        for t in self._threads:
            t.join(timeout=5.0)
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None

    # -- admission ---------------------------------------------------------

    def _op_submit(self, params: dict[str, Any]) -> dict[str, Any]:
        spec_dict = params.get("spec")
        if not isinstance(spec_dict, dict):
            raise ServeError("submit needs a spec object")
        spec = ScenarioSpec.from_dict(spec_dict)
        priority = params.get("priority", 0)
        if not isinstance(priority, int):
            raise ServeError("priority must be an integer")
        tenant = params.get("tenant", DEFAULT_TENANT)
        if not isinstance(tenant, str) or not tenant:
            raise ServeError("tenant must be a non-empty string")
        trial_specs = self.session.plan(spec)
        keys = [
            cache_key(t.experiment, t.config, t.seed) for t in trial_specs
        ]
        if self.quota is not None:
            self.quota.admit(tenant, len(trial_specs))
        job = self.queue.submit(spec, trial_specs, keys, priority=priority)
        worker = threading.Thread(
            target=self._run_job,
            args=(job,),
            name=f"cluster-job-{job.id}",
            daemon=True,
        )
        with self._lock:
            self._threads = [t for t in self._threads if t.is_alive()]
            self._threads.append(worker)
        worker.start()
        return protocol.ok_response(
            job_id=job.id,
            state=job.state,
            trials=job.total,
            spec_hash=spec.spec_hash(),
            tenant=tenant,
        )

    # -- the per-job dispatcher --------------------------------------------

    def _run_job(self, job: Job) -> None:
        """Drive one job to a terminal state (runs in its own thread)."""
        try:
            self._shard_and_collect(job)
        except Exception as e:  # a bug must surface as failed, not a hang
            with job.cond:
                job.error = f"coordinator error: {type(e).__name__}: {e}"
            job.set_state("failed")

    def _shard_and_collect(self, job: Job) -> None:
        job.set_state("running")
        if job.is_terminal():  # cancelled before the dispatcher ran
            return
        # coordinator-cache fast path: raw objects land directly
        pending: list[int] = []
        for idx in range(job.total):
            hit = self.cache.get(job.keys[idx], _MISS)
            if hit is _MISS:
                pending.append(idx)
            else:
                with self._lock:
                    self.trials_cached += 1
                job.land_row(idx, hit, cached=True)
        with job.cond:
            job.pending = list(pending)

        rounds = 0
        while pending and not job.is_terminal():
            agents = self.live_agents()
            if not agents:
                break
            if rounds > self.max_retries:
                break
            rounds += 1
            shards = partition_indices(job.keys, pending, len(agents))
            results: list[list[int]] = [[] for _ in agents]
            threads = []
            for ai, (agent, assigned) in enumerate(zip(agents, shards)):
                if not assigned:
                    continue
                t = threading.Thread(
                    target=self._run_shard,
                    args=(job, agent, assigned, results, ai),
                    name=f"{job.id}-shard-{ai}",
                    daemon=True,
                )
                threads.append(t)
                t.start()
            for t in threads:
                t.join()
            # an index is done only once its entry reached the
            # coordinator cache: a row streamed from an agent that died
            # before the pull must retry, or the final rebuild would
            # hit a replication hole
            landed = {i for chunk in results for i in chunk}
            pending = [
                i
                for i in pending
                if i not in landed or not self.cache.contains(job.keys[i])
            ]
            with job.cond:
                job.pending = list(pending)

        self._finish(job, pending)

    def _run_shard(
        self,
        job: Job,
        agent: AgentHandle,
        indices: list[int],
        results: list[list[int]],
        slot: int,
    ) -> None:
        """Submit one shard sub-grid to one agent and stream it home.

        Landed global indices are recorded in ``results[slot]``; any
        exception marks the agent dead and leaves its unlanded indices
        for the next round — fault handling is by omission, so a crash
        here can only cost retries, never correctness.
        """
        landed = results[slot]
        sub_id = None
        try:
            with agent.client() as client:
                ack = client.submit(job.spec, trial_indices=indices)
                sub_id = ack["job_id"]
                for event in client.stream(sub_id):
                    if job.is_terminal():
                        self._cancel_remote(agent, sub_id)
                        return
                    if event.get("event") == "row":
                        gidx = indices[event["index"]]
                        job.land_row(gidx, event["row"], event["cached"])
                        landed.append(gidx)
                        with self._lock:
                            if event["cached"]:
                                self.trials_cached += 1
                            else:
                                self.trials_executed += 1
                    elif event.get("event") == "end":
                        if event.get("state") != "done":
                            # partial/failed sub-job: unlanded indices
                            # retry elsewhere, like any other shard loss
                            return
            # the pull is not optional: the final report is rebuilt
            # from raw coordinator-cache objects, so every computed
            # entry must come home (``replicate`` gates only the
            # peer push)
            self._pull_shard(agent, job, indices)
        except (ServeError, OSError, ConnectionError, KeyError):
            # fault handling is by omission: the agent is marked dead
            # and this shard's unlanded indices retry on the survivors
            agent.alive = False

    def _cancel_remote(self, agent: AgentHandle, sub_id: str) -> None:
        """Best-effort cancel of a shard sub-job (cluster job cancelled)."""
        try:
            with agent.client(timeout=5.0) as control:
                control.cancel(sub_id)
        except (ServeError, OSError, ConnectionError):
            pass

    def _pull_shard(
        self, agent: AgentHandle, job: Job, indices: list[int]
    ) -> None:
        """Replicate a finished shard's entries into the coordinator cache."""
        keys = [job.keys[i] for i in indices]
        with agent.client() as client:
            self.replicator.pull(client, keys)

    # -- completion --------------------------------------------------------

    def _finish(self, job: Job, unlanded: list[int]) -> None:
        if job.is_terminal():  # cancelled mid-flight
            return
        if unlanded:
            with job.cond:
                for idx in unlanded:
                    job.lost.setdefault(idx, "no live agent could run it")
                job.error = (
                    f"{len(unlanded)} of {job.total} trials lost: "
                    f"{len(self.live_agents())} live agent(s) after retries"
                )
            job.set_state("partial")
            return
        if self.replicate:
            self._push_all(job)
        # parity-critical: rebuild rows from raw cache objects — the
        # streamed rows were JSON-safe renderings, and the report must
        # be byte-identical to a single-host Session.run of the spec
        raw = [self.cache.get(key, _MISS) for key in job.keys]
        missing = [i for i, r in enumerate(raw) if r is _MISS]
        if missing:
            with job.cond:
                job.error = (
                    f"replication hole: {len(missing)} computed entr"
                    f"{'y' if len(missing) == 1 else 'ies'} missing from the "
                    "coordinator cache"
                )
            job.set_state("failed")
            return
        job.report = self.session.build_report(
            job.spec,
            raw,
            execution={
                "agents": len(self.agents),
                "live_agents": len(self.live_agents()),
                "total_trials": job.total,
                "cache_hits": job.cached,
                "executed": job.total - job.cached,
                "cached": True,
                "replicated": self.replicate,
            },
        )
        job.set_state("done")
        self.cache.flush_stats()

    def _push_all(self, job: Job) -> None:
        """Publish the job's full entry set to every live agent."""
        for agent in self.live_agents():
            try:
                with agent.client() as client:
                    self.replicator.push(client, job.keys)
            except (ServeError, OSError, ConnectionError):
                agent.alive = False  # replication never fails a done job

    # -- deterministic results ---------------------------------------------

    def _op_results(self, params: dict[str, Any]) -> dict[str, Any]:
        """Results with rows reassembled in plan order.

        Which shard answers first is timing; the *results* a client
        fetches after the fact must not be.  Sorting by global trial
        index makes the results payload identical between a first
        cluster run, a replayed run, and a single-host run of the same
        spec (streamed event order remains landing order, exactly as on
        a single host with several workers).
        """
        response = super()._op_results(params)
        if response.get("ok"):
            response["rows"] = sorted(
                response["rows"], key=lambda r: r["index"]
            )
        return response

    # -- liveness ----------------------------------------------------------

    def _op_ping(self, _params: dict[str, Any]) -> dict[str, Any]:
        with self._lock:
            agents = [a.describe() for a in self.agents]
        return protocol.ok_response(
            protocol=protocol.PROTOCOL_VERSION,
            role="coordinator",
            agents=agents,
            active_jobs=self.queue.active_count(),
            queue_limit=self.queue.limit,
            trials_executed=self.trials_executed,
            trials_cached=self.trials_cached,
            cached=True,
            replicate=self.replicate,
            quota=(
                None if self.quota is None
                else {
                    "capacity": self.quota.capacity,
                    "refill_per_s": self.quota.refill_per_s,
                    "tenants": self.quota.snapshot(),
                }
            ),
        )
