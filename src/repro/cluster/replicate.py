"""Byte-exact cache replication between cluster hosts.

After a sharded job completes, each trial's cache entry exists on
exactly one host — the shard that computed it.  A rerun of the same
spec would then re-shard and hit only ``1/n`` of its trials per agent.
:class:`CacheReplicator` closes that gap: the coordinator *pulls* each
freshly-computed entry from the shard that owns it into its own
cache, then *pushes* the full set to every other agent, so after one
cluster run **every host holds every entry** and a rerun is a pure
mmap cache replay everywhere (the ``cluster_cache_replay`` benchmark
and the CI cluster-smoke job pin this).

Entries travel as the raw on-disk bytes —
:meth:`~repro.orchestrate.ResultCache.export_entry` /
:meth:`~repro.orchestrate.ResultCache.import_entry` — base64-wrapped
into one ``cache_export`` / ``cache_import`` protocol line per entry.
Byte-exactness is the point: a replicated ``.pkl`` is
indistinguishable from a locally-computed one, so cache keys, parity
gates, and the zero-copy ``.cols`` mmap path behave identically on
every host.  One entry per line keeps each message far under the
protocol's 8 MiB line ceiling; a single entry larger than that cannot
be replicated and is reported, not silently dropped.
"""

from __future__ import annotations

import base64

from repro.errors import ClusterError, ServeError
from repro.orchestrate import ResultCache
from repro.serve.client import ServerClient
from repro.serve.policy import DEFAULT_POLICY, RetryPolicy


def encode_entry(pkl: bytes, cols: bytes | None) -> dict:
    """Wire form of one cache entry (base64 over the JSON protocol)."""
    return {
        "pkl": base64.b64encode(pkl).decode("ascii"),
        "cols": None if cols is None else base64.b64encode(cols).decode("ascii"),
    }


def decode_entry(payload: dict) -> tuple[bytes, bytes | None]:
    """Inverse of :func:`encode_entry`; raises on malformed payloads."""
    try:
        pkl = base64.b64decode(payload["pkl"], validate=True)
        cols_b64 = payload.get("cols")
        cols = (
            None if cols_b64 is None
            else base64.b64decode(cols_b64, validate=True)
        )
    except (KeyError, TypeError, ValueError) as e:
        raise ClusterError(f"malformed cache entry payload: {e}") from None
    return pkl, cols


class CacheReplicator:
    """Moves cache entries between a local cache and remote agents.

    Stateless beyond the local :class:`~repro.orchestrate.ResultCache`;
    the coordinator calls :meth:`pull` with the shard that computed a
    set of keys and :meth:`push` with everyone else.  ``policy`` is the
    shared :class:`~repro.serve.RetryPolicy`: its ``deadline_s`` (when
    set) bounds each whole pull/push pass — a replication sweep over a
    huge key set raises a structured
    :class:`~repro.errors.DeadlineExceededError` instead of holding a
    job's completion hostage to one slow peer.
    """

    def __init__(
        self, cache: ResultCache, policy: RetryPolicy | None = None
    ) -> None:
        self.cache = cache
        self.policy = policy or DEFAULT_POLICY

    # -- pull: remote agent -> local cache ---------------------------------

    def pull(self, client: ServerClient, keys: list[str]) -> int:
        """Fetch ``keys`` the local cache is missing from one agent.

        Returns the number of entries imported.  A key the agent does
        not hold either (a trial lost to a crash) is skipped — the
        job's ``partial`` state already reports it; replication never
        escalates a known loss into a new failure.
        """
        deadline = self.policy.deadline()
        pulled = 0
        for key in keys:
            if self.cache.contains(key):
                continue
            deadline.check("cache pull", key=key, pulled=pulled)
            try:
                response = client.request("cache_export", key=key)
            except ServeError as e:
                if e.code == "bad_request":
                    continue  # agent doesn't have it either
                raise
            pkl, cols = decode_entry(response)
            self.cache.import_entry(key, pkl, cols)
            pulled += 1
        return pulled

    # -- push: local cache -> remote agents --------------------------------

    def push(self, client: ServerClient, keys: list[str]) -> int:
        """Publish locally-held ``keys`` to one agent; returns sent count.

        Imports are idempotent (atomic overwrite with identical bytes),
        so pushing an entry the agent already holds is harmless — the
        agent answers ``imported=False`` and the coordinator moves on.
        """
        deadline = self.policy.deadline()
        pushed = 0
        for key in keys:
            try:
                pkl, cols = self.cache.export_entry(key)
            except KeyError:
                continue  # lost trial: nothing to publish
            deadline.check("cache push", key=key, pushed=pushed)
            response = client.request(
                "cache_import", key=key, **encode_entry(pkl, cols)
            )
            pushed += 1 if response.get("imported") else 0
        return pushed
