"""Deterministic trial-grid partitioning across shard agents.

The coordinator splits one job's planned grid across its live agents
by *cache key*, not by position: shard assignment is a pure function
of what each trial computes, so

* the same spec partitions identically on every coordinator (no state
  to sync, nothing to persist across restarts), and
* twin trials (same experiment/config/seed appearing in two jobs) land
  on the same shard, where the agent's own in-flight dedup collapses
  them to one computation.

Keys are SHA-256 hex digests (see
:func:`repro.orchestrate.cache_key`), so the leading 64 bits are
already uniformly distributed — shard choice is a plain modulus over
them, no rehashing needed.
"""

from __future__ import annotations

#: hex digits of the cache key used for shard choice (64 bits: far
#: beyond any plausible shard count, still cheap to parse)
_PREFIX_HEX = 16


def shard_for_key(key: str, n_shards: int) -> int:
    """The shard index in ``[0, n_shards)`` owning this cache key."""
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    return int(key[:_PREFIX_HEX], 16) % n_shards


def partition_indices(
    keys: list[str], indices: list[int], n_shards: int
) -> list[list[int]]:
    """Split ``indices`` into per-shard lists by each trial's cache key.

    ``keys`` is the *full* plan's key list (positional, as built at
    submit time); ``indices`` selects the subset still to be computed.
    Returns one (possibly empty) list per shard, each preserving plan
    order — so a shard's sub-grid streams back in a deterministic
    order and the coordinator can reassemble positionally.
    """
    shards: list[list[int]] = [[] for _ in range(n_shards)]
    for idx in indices:
        shards[shard_for_key(keys[idx], n_shards)].append(idx)
    return shards
