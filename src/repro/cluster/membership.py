"""Dynamic cluster membership: agent states, probing, and epochs.

PR 9's coordinator had a static agent list: ``register`` could add an
agent, dispatch failure could mark one dead, and that was the whole
lifecycle.  This module makes membership a first-class registry:

* Every agent is an :class:`AgentHandle` in one of :data:`AGENT_STATES`
  — ``alive`` (schedulable), ``suspect`` (missed probes, not yet
  written off), ``dead`` (unreachable or failed a dispatch), ``left``
  (explicitly deregistered; never revived by the prober).
* A background **health prober** pings every non-``left`` agent each
  ``probe_interval_s``: a miss increments the handle's counter
  (``suspect`` after :attr:`Membership.suspect_after`, ``dead`` after
  :attr:`Membership.dead_after`); one successful re-probe revives the
  agent to ``alive`` from either degraded state.  This is what lets a
  killed-and-restarted agent receive work again *without* a
  coordinator restart.
* Every state change bumps a monotonic **epoch** counter.  The
  coordinator snapshots the epoch when it plans a sharding round and
  re-plans the pending indices when the epoch moved mid-round — so a
  join adds capacity to a running job and a leave/death re-routes its
  share *before* a dispatch failure would have noticed.

Probes are single-attempt (``policy.replace(max_attempts=1)``): the
probe cadence is itself the retry loop, and a multi-attempt probe
would just blur the miss counters the thresholds are defined over.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from repro.errors import ClusterError, ServeError
from repro.serve.client import ServerClient
from repro.serve.policy import DEFAULT_POLICY, RetryPolicy

__all__ = ["AGENT_STATES", "AgentHandle", "Membership"]

#: the agent lifecycle states, in rough health order
AGENT_STATES = ("alive", "suspect", "dead", "left")


class AgentHandle:
    """One member agent: address, lifecycle state, and client factory."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = int(port)
        #: one of :data:`AGENT_STATES`
        self.state = "alive"
        #: consecutive failed probes since the last success
        self.misses = 0
        #: times the prober revived this agent from suspect/dead
        self.revivals = 0
        #: why the agent left the ``alive`` state (for operators)
        self.reason: str | None = None

    @property
    def key(self) -> tuple[str, int]:
        return (self.host, self.port)

    @property
    def alive(self) -> bool:
        """Schedulable right now (state ``alive``)."""
        return self.state == "alive"

    @alive.setter
    def alive(self, value: bool) -> None:
        # back-compat with the PR 9 boolean: True revives, False kills
        self.state = "alive" if value else "dead"
        if value:
            self.misses = 0

    def client(self, policy: RetryPolicy | None = None) -> ServerClient:
        """A fresh connection (streams and control ops never share one)."""
        return ServerClient(self.host, self.port, policy=policy)

    def describe(self) -> dict[str, Any]:
        return {
            "host": self.host,
            "port": self.port,
            "state": self.state,
            "alive": self.alive,
            "misses": self.misses,
            "revivals": self.revivals,
            "reason": self.reason,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AgentHandle({self.host}:{self.port} {self.state})"


class Membership:
    """The coordinator's agent registry with failure detection.

    ``agents`` seeds the registry with ``(host, port)`` addresses (not
    handshaked until :meth:`handshake_all`).  ``probe_interval_s=None``
    disables the background prober (probing can still be driven
    manually via :meth:`probe_once`, which is what the unit tests do).
    ``clock`` is unused by the prober loop itself but kept injectable
    for future lease-based variants.
    """

    def __init__(
        self,
        agents: list[tuple[str, int]] | None = None,
        policy: RetryPolicy | None = None,
        probe_interval_s: float | None = None,
        suspect_after: int = 1,
        dead_after: int = 3,
        on_change: Callable[[AgentHandle], None] | None = None,
    ) -> None:
        if suspect_after < 1 or dead_after < suspect_after:
            raise ValueError(
                "need 1 <= suspect_after <= dead_after, got "
                f"{suspect_after}/{dead_after}"
            )
        self.policy = policy or DEFAULT_POLICY
        #: single-attempt variant used for probes and handshakes
        self.probe_policy = self.policy.replace(max_attempts=1)
        self.probe_interval_s = probe_interval_s
        self.suspect_after = suspect_after
        self.dead_after = dead_after
        #: monotonic counter bumped on every membership change; the
        #: coordinator re-plans a sharding round when it moves
        self.epoch = 0
        self.probes = 0  # completed probe rounds (for ping/ops)
        self._on_change = on_change
        self._lock = threading.Lock()
        self._handles: list[AgentHandle] = [
            AgentHandle(h, p) for h, p in (agents or [])
        ]
        self._prober: threading.Thread | None = None
        self._stop = threading.Event()

    # -- views -------------------------------------------------------------

    def handles(self) -> list[AgentHandle]:
        """Every known agent (all states), registration order."""
        with self._lock:
            return list(self._handles)

    def live(self) -> list[AgentHandle]:
        """Agents currently schedulable (state ``alive``)."""
        with self._lock:
            return [h for h in self._handles if h.alive]

    def get(self, host: str, port: int) -> AgentHandle | None:
        key = (host, int(port))
        with self._lock:
            for h in self._handles:
                if h.key == key:
                    return h
        return None

    def snapshot(self) -> list[dict[str, Any]]:
        with self._lock:
            return [h.describe() for h in self._handles]

    # -- changes -----------------------------------------------------------

    def _bump(self, handle: AgentHandle) -> None:
        """Record a membership change (caller holds no invariants)."""
        with self._lock:
            self.epoch += 1
        if self._on_change is not None:
            self._on_change(handle)

    def add(self, host: str, port: int, handshake: bool = True) -> AgentHandle:
        """Join (or re-join) an agent; handshakes it first by default.

        Re-adding a known address revives the existing handle in place
        — a ``left`` or ``dead`` agent that comes back through
        ``agents_join`` is immediately schedulable again.
        """
        existing = self.get(host, port)
        handle = existing or AgentHandle(host, port)
        if handshake:
            self.handshake(handle)
        if existing is None:
            with self._lock:
                self._handles.append(handle)
        changed = not handle.alive or existing is None
        handle.state = "alive"
        handle.misses = 0
        handle.reason = None
        if changed:
            self._bump(handle)
        return handle

    def leave(self, host: str, port: int) -> AgentHandle:
        """Explicit deregistration: state ``left``, never auto-revived."""
        handle = self.get(host, port)
        if handle is None:
            raise ServeError(
                f"unknown agent {host}:{port}",
                code="bad_request",
                host=host,
                port=port,
            )
        if handle.state != "left":
            handle.state = "left"
            handle.reason = "deregistered"
            self._bump(handle)
        return handle

    def mark_dead(self, handle: AgentHandle, reason: str) -> None:
        """Declare an agent dead (dispatch failure path)."""
        if handle.state not in ("dead", "left"):
            handle.state = "dead"
            handle.reason = reason
            self._bump(handle)

    def handshake(self, handle: AgentHandle) -> None:
        """Version-check one agent; a skewed or dead peer never joins."""
        try:
            with handle.client(self.probe_policy) as client:
                client.handshake()
        except ServeError as e:
            raise ClusterError(
                f"agent {handle.host}:{handle.port} cannot join: {e}",
                code=e.code,
                host=handle.host,
                port=handle.port,
            ) from e

    def handshake_all(self) -> None:
        for handle in self.handles():
            if handle.state != "left":
                self.handshake(handle)

    # -- probing -----------------------------------------------------------

    def probe_once(self) -> int:
        """One probe round over every non-``left`` agent.

        Returns the number of state transitions it caused.  A
        successful ping zeroes the miss counter and revives
        ``suspect``/``dead`` agents; a failed one advances the counter
        through the suspect/dead thresholds.
        """
        changes = 0
        for handle in self.handles():
            if handle.state == "left":
                continue
            try:
                with handle.client(self.probe_policy) as client:
                    client.ping()
            except (ServeError, OSError, ConnectionError):
                handle.misses += 1
                if handle.misses >= self.dead_after:
                    if handle.state != "dead":
                        handle.state = "dead"
                        handle.reason = f"{handle.misses} missed probes"
                        self._bump(handle)
                        changes += 1
                elif handle.misses >= self.suspect_after:
                    if handle.state == "alive":
                        handle.state = "suspect"
                        handle.reason = f"{handle.misses} missed probe(s)"
                        self._bump(handle)
                        changes += 1
            else:
                handle.misses = 0
                if handle.state != "alive":
                    handle.state = "alive"
                    handle.reason = None
                    handle.revivals += 1
                    self._bump(handle)
                    changes += 1
        with self._lock:
            self.probes += 1
        return changes

    def start(self) -> None:
        """Start the background prober (no-op without an interval)."""
        if self.probe_interval_s is None or self._prober is not None:
            return
        self._stop.clear()
        self._prober = threading.Thread(
            target=self._probe_loop, name="membership-prober", daemon=True
        )
        self._prober.start()

    def stop(self) -> None:
        """Stop the prober and join it; idempotent."""
        self._stop.set()
        if self._prober is not None:
            self._prober.join(timeout=5.0)
            self._prober = None

    def _probe_loop(self) -> None:
        assert self.probe_interval_s is not None
        while not self._stop.wait(self.probe_interval_s):
            self.probe_once()
