"""HTTP/JSON gateway over any repro service, plus a matching client.

The socket protocol is the native transport, but curl, dashboards, and
non-Python tooling want HTTP.  :class:`HttpGateway` is a thin stdlib
``http.server`` front end over any :class:`~repro.serve.ServerBase`
backend — it calls the *same* :meth:`~repro.serve.ServerBase.call` /
:meth:`~repro.serve.ServerBase.stream_events` dispatch surface the
socket handler uses, so every payload (acks, status snapshots,
results, stream events, structured errors) is byte-for-byte the
canonical protocol JSON; only the envelope changes (URL + status code
instead of a request line).

Routes::

    POST /v1/jobs                  submit   (body: {"spec": ..., ...})
    GET  /v1/jobs/<id>             status
    GET  /v1/jobs/<id>/results     results
    POST /v1/jobs/<id>/cancel      cancel
    GET  /v1/jobs/<id>/stream      stream   (chunked NDJSON)
    GET  /v1/ping                  ping
    GET  /v1/agents                agents_status (coordinator backends)
    POST /v1/agents/join           agents_join   (body: {"host", "port"})
    POST /v1/agents/leave          agents_leave  (body: {"host", "port"})
    POST /v1/shutdown              shutdown (backend and gateway)

Streaming uses ``Transfer-Encoding: chunked`` with one protocol JSON
line per event — ``http.client`` (and every HTTP library) de-chunks
transparently, so :class:`HttpClusterClient` reads the same NDJSON a
socket stream carries.  Structured error codes map onto HTTP status
codes (``queue_full``/``quota_exceeded`` → 429, ``unknown_job`` → 404,
...) while the body keeps the full protocol error object, so HTTP
clients branch on either.
"""

from __future__ import annotations

import random
import threading
from http.client import HTTPConnection
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Iterator

from repro.errors import ServeError
from repro.scenarios.spec import ScenarioSpec
from repro.serve import protocol
from repro.serve.client import RunOutcome
from repro.serve.policy import RetryPolicy
from repro.serve.server import ServerBase

#: structured protocol error code -> HTTP status
STATUS_BY_CODE = {
    "bad_request": 400,
    "bad_spec": 400,
    "protocol_mismatch": 400,
    "unknown_job": 404,
    "not_finished": 409,
    "job_failed": 409,
    "queue_full": 429,
    "quota_exceeded": 429,
    "connect_failed": 502,
    "deadline_exceeded": 504,
}


def _status_for(response: dict[str, Any]) -> int:
    if response.get("ok"):
        return 200
    code = (response.get("error") or {}).get("code", "bad_request")
    return STATUS_BY_CODE.get(code, 500)


class _GatewayHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the backend's dispatch surface."""

    protocol_version = "HTTP/1.1"  # required for chunked streaming

    server: "_GatewayServer"

    def log_message(self, *args) -> None:  # quiet: the CLI prints once
        pass

    # -- plumbing ----------------------------------------------------------

    def _read_body(self) -> dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length == 0:
            return {}
        if length > protocol.MAX_LINE_BYTES:
            raise ServeError(
                f"request body over {protocol.MAX_LINE_BYTES} bytes"
            )
        try:
            body = protocol.decode_message(self.rfile.read(length))
        except protocol.ProtocolError as e:
            raise ServeError(str(e)) from None
        if not isinstance(body, dict):
            raise ServeError("request body must be a JSON object")
        return body

    def _send_json(self, response: dict[str, Any]) -> None:
        payload = protocol.encode_message(response)
        self.send_response(_status_for(response))
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _send_stream(self, events: Iterator[dict[str, Any]]) -> None:
        """One chunk per protocol line; ends with the zero chunk."""
        try:
            first = next(events)
        except ServeError as e:
            self._send_json(protocol.error_response(e.code, str(e)))
            return
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        self._write_chunk(protocol.encode_message(first))
        for event in events:
            self._write_chunk(protocol.encode_message(event))
        self.wfile.write(b"0\r\n\r\n")

    def _write_chunk(self, payload: bytes) -> None:
        self.wfile.write(f"{len(payload):x}\r\n".encode("ascii"))
        self.wfile.write(payload)
        self.wfile.write(b"\r\n")
        self.wfile.flush()

    # -- routing -----------------------------------------------------------

    def _route(self, method: str) -> None:
        backend = self.server.backend
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        try:
            if parts[:1] != ["v1"]:
                raise ServeError(f"unknown path {self.path!r}")
            if parts[1:] == ["ping"] and method == "GET":
                self._send_json(backend.call("ping", {}))
            elif parts[1:] == ["shutdown"] and method == "POST":
                response = backend.call("shutdown", {})
                self._send_json(response)
                threading.Thread(
                    target=self.server.gateway.stop, daemon=True
                ).start()
            elif parts[1:] == ["agents"] and method == "GET":
                self._send_json(backend.call("agents_status", {}))
            elif (
                len(parts) == 3
                and parts[1] == "agents"
                and parts[2] in ("join", "leave")
                and method == "POST"
            ):
                self._send_json(
                    backend.call(f"agents_{parts[2]}", self._read_body())
                )
            elif parts[1:] == ["jobs"] and method == "POST":
                self._send_json(backend.call("submit", self._read_body()))
            elif len(parts) == 3 and parts[1] == "jobs" and method == "GET":
                self._send_json(backend.call("status", {"job_id": parts[2]}))
            elif len(parts) == 4 and parts[1] == "jobs":
                job_id, tail = parts[2], parts[3]
                if tail == "results" and method == "GET":
                    self._send_json(
                        backend.call("results", {"job_id": job_id})
                    )
                elif tail == "cancel" and method == "POST":
                    self._send_json(backend.call("cancel", {"job_id": job_id}))
                elif tail == "stream" and method == "GET":
                    self._send_stream(
                        backend.stream_events({"job_id": job_id})
                    )
                else:
                    raise ServeError(f"unknown path {self.path!r}")
            else:
                raise ServeError(f"unknown path {self.path!r}")
        except ServeError as e:
            self._send_json(protocol.error_response(e.code, str(e)))
        except (BrokenPipeError, ConnectionError):
            pass  # client went away; jobs live on, like the socket path

    def do_GET(self) -> None:
        self._route("GET")

    def do_POST(self) -> None:
        self._route("POST")


class _GatewayServer(ThreadingHTTPServer):
    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, addr, backend: ServerBase, gateway: "HttpGateway"):
        self.backend = backend
        self.gateway = gateway
        super().__init__(addr, _GatewayHandler)


class HttpGateway:
    """HTTP front end for a running :class:`~repro.serve.ServerBase`.

    The gateway owns no jobs and no state — it is a transport adapter;
    stopping it leaves the backend (and its socket listener) running
    unless the stop came from ``POST /v1/shutdown``, which stops both.
    """

    def __init__(
        self, backend: ServerBase, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.backend = backend
        self._server = _GatewayServer((host, port), backend, self)
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — resolved even when ``port=0``."""
        return self._server.server_address[:2]

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="cluster-http",
            daemon=True,
        )
        self._thread.start()

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "HttpGateway":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


class HttpClusterClient:
    """Typed HTTP client mirroring :class:`~repro.serve.ServerClient`.

    Same methods, same :class:`~repro.errors.ServeError` structured
    failures, same :class:`~repro.serve.RunOutcome` from :meth:`run` —
    the transport is the only difference, which is what lets the HTTP
    gateway pass the same end-to-end suite as the socket server.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8123,
        timeout: float | None = 60.0,
        policy: RetryPolicy | None = None,
        rng: random.Random | None = None,
    ) -> None:
        self.host = host
        self.port = port
        if policy is None:
            # legacy single-attempt behavior when only a timeout is given
            policy = RetryPolicy(max_attempts=1, op_timeout_s=timeout)
        #: the :class:`~repro.serve.RetryPolicy` for every request:
        #: transport failures retry with full-jitter backoff under the
        #: policy's attempt budget and overall deadline
        self.policy = policy
        self.timeout = policy.op_timeout_s
        self._rng = rng

    def _connection(self) -> HTTPConnection:
        return HTTPConnection(self.host, self.port, timeout=self.timeout)

    @staticmethod
    def _checked(raw: bytes) -> dict[str, Any]:
        response = protocol.decode_message(raw)
        if response.get("ok"):
            return response
        err = response.get("error") or {}
        raise ServeError(
            err.get("reason", "server reported an error"),
            code=err.get("code", "bad_request"),
            **{k: v for k, v in err.items() if k not in ("code", "reason")},
        )

    def _request(
        self, method: str, path: str, body: dict | None = None
    ) -> dict[str, Any]:
        def once() -> dict[str, Any]:
            conn = self._connection()
            try:
                payload = (
                    None if body is None else protocol.encode_message(body)
                )
                headers = (
                    {"Content-Type": "application/json"} if payload else {}
                )
                conn.request(method, path, body=payload, headers=headers)
                return self._checked(conn.getresponse().read())
            finally:
                conn.close()

        try:
            return self.policy.call(
                once, describe=f"{method} {path}", rng=self._rng
            )
        except OSError as e:
            raise ServeError(
                f"could not reach http://{self.host}:{self.port}{path} "
                f"after {self.policy.max_attempts} attempt(s): {e}",
                code="connect_failed",
                host=self.host,
                port=self.port,
                attempts=self.policy.max_attempts,
            ) from None

    # -- ops ---------------------------------------------------------------

    def submit(
        self,
        spec: ScenarioSpec | dict,
        priority: int = 0,
        tenant: str | None = None,
    ) -> dict[str, Any]:
        """POST the scenario; returns the admission ack."""
        spec_dict = spec.to_dict() if isinstance(spec, ScenarioSpec) else spec
        body: dict[str, Any] = {"spec": spec_dict, "priority": priority}
        if tenant is not None:
            body["tenant"] = tenant
        return self._request("POST", "/v1/jobs", body)

    def status(self, job_id: str) -> dict[str, Any]:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def results(self, job_id: str) -> dict[str, Any]:
        return self._request("GET", f"/v1/jobs/{job_id}/results")

    def cancel(self, job_id: str) -> dict[str, Any]:
        return self._request("POST", f"/v1/jobs/{job_id}/cancel")

    def ping(self) -> dict[str, Any]:
        return self._request("GET", "/v1/ping")

    def agents_status(self) -> dict[str, Any]:
        """The coordinator's membership table and epoch."""
        return self._request("GET", "/v1/agents")

    def agents_join(self, host: str, port: int) -> dict[str, Any]:
        """Admit (or revive) an agent in the coordinator's membership."""
        return self._request(
            "POST", "/v1/agents/join", {"host": host, "port": port}
        )

    def agents_leave(self, host: str, port: int) -> dict[str, Any]:
        """Deregister an agent (state ``left``; never auto-revived)."""
        return self._request(
            "POST", "/v1/agents/leave", {"host": host, "port": port}
        )

    def shutdown(self) -> dict[str, Any]:
        return self._request("POST", "/v1/shutdown")

    def stream(self, job_id: str) -> Iterator[dict[str, Any]]:
        """Yield stream events (``http.client`` de-chunks for us)."""
        conn = self._connection()
        try:
            conn.request("GET", f"/v1/jobs/{job_id}/stream")
            response = conn.getresponse()
            if response.status != 200:
                self._checked(response.read())  # raises the structured error
                raise ServeError("stream failed without a structured error")
            while True:
                line = response.readline(protocol.MAX_LINE_BYTES + 1)
                if not line:
                    return
                event = protocol.decode_message(line)
                if "event" not in event:
                    self._checked(line)  # the ack (or an error)
                    continue
                yield event
                if event.get("event") == "end":
                    return
        finally:
            conn.close()

    # -- convenience -------------------------------------------------------

    def run(
        self,
        spec: ScenarioSpec | dict,
        priority: int = 0,
        tenant: str | None = None,
    ) -> RunOutcome:
        """Submit, stream every row, then fetch the final results."""
        ack = self.submit(spec, priority=priority, tenant=tenant)
        job_id = ack["job_id"]
        rows: list[dict] = []
        state = "running"
        error = None
        for event in self.stream(job_id):
            if event.get("event") == "row":
                rows.append(
                    {k: event[k] for k in ("index", "cached", "row")}
                )
            else:
                state = event.get("state", "done")
                error = event.get("error")
        report = None
        if state in ("done", "partial"):
            report = self.results(job_id).get("report")
        return RunOutcome(
            job_id=job_id, state=state, rows=rows, report=report, error=error
        )
