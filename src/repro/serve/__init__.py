"""Profiling-as-a-service: a persistent Session server with streaming jobs.

``repro run`` pays full process-pool spin-up for every invocation and
exits; this package keeps the whole stack resident.  A
:class:`ProfilingServer` owns one persistent
:class:`~repro.orchestrate.WorkerPool`, one shared
:class:`~repro.orchestrate.ResultCache`, and a bounded
:class:`JobQueue`; clients submit declarative
:class:`~repro.scenarios.ScenarioSpec` payloads over a line-delimited
JSON socket protocol and stream partial results back as trials land.

The moving parts:

:class:`JobQueue` / :class:`Job`
    Job states (``queued``/``running``/``partial``/``done``/``failed``/
    ``cancelled``), priorities, and bounded admission — a full queue
    rejects immediately with a structured ``queue_full`` error.
:class:`Scheduler`
    Shards every admitted job's trial grid across the persistent pool
    with per-job fairness (round-robin within a priority class, so one
    huge sweep cannot starve small jobs), resolves cache hits without
    touching workers, dedups identical in-flight trials across jobs,
    and degrades jobs to ``partial`` (after retries) when workers die
    mid-trial.
:class:`ProfilingServer`
    The TCP front door: ``submit`` / ``status`` / ``results`` /
    ``stream`` / ``cancel`` / ``shutdown`` / ``ping`` over
    :mod:`repro.serve.protocol`, one handler thread per connection.
:class:`ServerClient`
    Typed client for all of the above, plus the
    submit → stream → results convenience loop :meth:`ServerClient.run`.
:class:`RetryPolicy`
    The one dataclass governing every client-side timeout, retry
    budget, full-jitter backoff, and overall deadline — injected into
    :class:`ServerClient`, the cluster coordinator, the HTTP client,
    and the cache replicator instead of scattered constants.

Start one from the shell with ``python -m repro serve --port 7123
--workers 4 --cache-dir ~/.cache/repro`` (see ``docs/serving.md``), or
in-process::

    from repro.serve import ProfilingServer, ServerClient

    with ProfilingServer(port=0, workers=2) as srv:
        host, port = srv.address
        with ServerClient(host, port) as client:
            outcome = client.run(my_spec)

The service path is pinned byte-identical to
:meth:`repro.scenarios.Session.run` — same planner, same trial
functions, same cache keys — by ``tests/serve/test_server_e2e.py``.
"""

from repro.serve.client import RunOutcome, ServerClient
from repro.serve.policy import DEFAULT_POLICY, Deadline, RetryPolicy
from repro.serve.protocol import (
    ERROR_CODES,
    MAX_LINE_BYTES,
    OPS,
    PROTOCOL_VERSION,
    ProtocolError,
    check_protocol,
    decode_message,
    encode_message,
    error_response,
    ok_response,
    parse_request,
    read_message,
    write_message,
)
from repro.serve.queue import JOB_STATES, TERMINAL_STATES, Job, JobQueue
from repro.serve.scheduler import Scheduler
from repro.serve.server import ProfilingServer, ServerBase

__all__ = [
    "DEFAULT_POLICY",
    "Deadline",
    "ERROR_CODES",
    "JOB_STATES",
    "Job",
    "JobQueue",
    "MAX_LINE_BYTES",
    "OPS",
    "PROTOCOL_VERSION",
    "ProfilingServer",
    "ProtocolError",
    "RetryPolicy",
    "RunOutcome",
    "Scheduler",
    "ServerBase",
    "ServerClient",
    "TERMINAL_STATES",
    "check_protocol",
    "decode_message",
    "encode_message",
    "error_response",
    "ok_response",
    "parse_request",
    "read_message",
    "write_message",
]
