"""The serve scheduler: fair trial dispatch over a persistent pool.

One scheduler thread drains the :class:`~repro.serve.queue.JobQueue`
onto one long-lived :class:`~repro.orchestrate.WorkerPool`, trial by
trial.  Three properties distinguish it from a per-job
:class:`~repro.orchestrate.ParallelRunner`:

**Cache fast path.**  At admission every trial key is probed against
the shared :class:`~repro.orchestrate.ResultCache`; hits land
immediately without touching the pool, so resubmitting an
already-computed spec is a near-instant pure replay (the
``serve_cache_replay`` benchmark entry).

**Per-job fairness.**  Dispatch round-robins over the highest-priority
jobs that still have pending trials, one trial at a time — a 500-trial
sweep and a 3-trial smoke admitted together interleave, so the small
job finishes early instead of queueing behind the sweep.

**Fault containment.**  A worker killed mid-trial surfaces as a pool
``lost`` event: the trial is retried (up to ``max_retries``) on the
replacement worker; a trial lost for good degrades the job to the
``partial`` terminal state with the loss recorded — never a hang.  A
trial that *raises* marks the job ``failed`` with the error.

In-flight deduplication keys on the trial cache key: if two live jobs
need the same trial, it is computed once and the result lands in both
(``tests/serve/test_cache_stress.py`` pins compute-at-most-once).
"""

from __future__ import annotations

import threading
from typing import Any

from repro.machine.spec import MachineSpec
from repro.orchestrate import ResultCache, WorkerPool
from repro.scenarios.session import Session
from repro.serve.queue import Job, JobQueue

_MISS = object()


class Scheduler:
    """Drains the job queue onto the worker pool, fairly and fault-tolerantly.

    ``machine`` overrides every spec's machine preset (tests run the
    small machine); ``cache`` is the shared content-addressed store —
    optional, but without it every resubmission recomputes.
    """

    def __init__(
        self,
        queue: JobQueue,
        pool: WorkerPool,
        cache: ResultCache | None = None,
        machine: MachineSpec | None = None,
        max_retries: int = 1,
    ) -> None:
        self.queue = queue
        self.pool = pool
        self.cache = cache
        self.session = Session(machine=machine)
        self.max_retries = max_retries
        #: pool task id -> trial cache key
        self._task_key: dict[int, str] = {}
        #: trial cache key -> jobs waiting on it: [(job, index), ...]
        self._owners: dict[str, list[tuple[Job, int]]] = {}
        #: per-job in-flight trial count (dedup followers included)
        self._inflight: dict[str, int] = {}
        self._rr = 0  # fairness rotation counter
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.trials_executed = 0
        self.trials_cached = 0

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Run the dispatch loop in a daemon thread."""
        assert self._thread is None, "scheduler already started"
        self._thread = threading.Thread(
            target=self._run, name="serve-scheduler", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        """Signal the loop to exit and join it."""
        self._stop.set()
        with self.queue.changed:
            self.queue.changed.notify_all()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None

    # -- main loop ---------------------------------------------------------

    def _run(self) -> None:
        while not self._stop.is_set():
            self._admit()
            self._dispatch()
            if self._task_key:
                event = self.pool.next_event(timeout=0.05)
                if event is not None:
                    self._handle_event(*event)
            else:
                with self.queue.changed:
                    if not self._has_work():
                        self.queue.changed.wait(timeout=0.2)

    def _has_work(self) -> bool:
        return any(
            j.pending or j.state == "queued" for j in self.queue.runnable()
        )

    # -- admission: cache fast path ---------------------------------------

    def _admit(self) -> None:
        for job in self.queue.runnable():
            if job.state != "queued":
                continue
            job.set_state("running")
            if self.cache is not None:
                still_pending = []
                for idx in job.pending:
                    hit = self.cache.get(job.keys[idx], _MISS)
                    if hit is _MISS:
                        still_pending.append(idx)
                    else:
                        self.trials_cached += 1
                        job.land_row(idx, hit, cached=True)
                with job.cond:
                    job.pending = still_pending
            self._maybe_finish(job)

    # -- dispatch: fairness round-robin ------------------------------------

    def _dispatch(self) -> None:
        while len(self._task_key) < self.pool.workers:
            picked = self._pick()
            if picked is None:
                return
            job, idx = picked
            key = job.keys[idx]
            if self.cache is not None:
                # a twin trial may have completed since this job was
                # admitted; probing again here makes "each unique trial
                # computed at most once" hold under any interleaving
                hit = self.cache.get(key, _MISS)
                if hit is not _MISS:
                    self.trials_cached += 1
                    job.land_row(idx, hit, cached=True)
                    self._maybe_finish(job)
                    continue
            self._inflight[job.id] = self._inflight.get(job.id, 0) + 1
            if key in self._owners:
                # identical trial already in flight: ride along
                self._owners[key].append((job, idx))
                continue
            self._owners[key] = [(job, idx)]
            task_id = self.pool.submit(
                self.session.trial_fn(job.spec), job.trial_specs[idx]
            )
            self._task_key[task_id] = key

    def _pick(self) -> tuple[Job, int] | None:
        """The next (job, trial) to dispatch, fairly.

        Among non-terminal jobs with pending trials, only the highest
        priority class is eligible; within it, rotation picks the job —
        so equal-priority jobs interleave trial-for-trial regardless of
        grid size.
        """
        candidates = [
            j for j in self.queue.runnable()
            if j.state == "running" and j.pending
        ]
        if not candidates:
            return None
        top = candidates[0].priority
        group = [j for j in candidates if j.priority == top]
        job = group[self._rr % len(group)]
        self._rr += 1
        with job.cond:
            # re-check the state under the job lock: a cancel landing
            # between the candidate snapshot above and this pop must
            # win — otherwise the first trial of a just-cancelled job
            # would still be dispatched as an orphan
            if job.state != "running" or not job.pending:
                return None
            idx = job.pending.pop(0)
        return job, idx

    # -- completion handling ----------------------------------------------

    def _handle_event(self, kind: str, task_id: int, payload: Any) -> None:
        key = self._task_key.pop(task_id, None)
        if key is None:
            return
        owners = self._owners.pop(key, [])
        if kind == "done":
            if self.cache is not None:
                self.cache.put(key, payload)
            self.trials_executed += 1
            for job, idx in owners:
                self._inflight[job.id] -= 1
                if not job.is_terminal():
                    job.land_row(idx, payload, cached=False)
                self._maybe_finish(job)
        elif kind == "lost":
            for job, idx in owners:
                self._inflight[job.id] -= 1
                if job.is_terminal():
                    continue
                with job.cond:
                    tries = job.retries.get(idx, 0)
                    if tries < self.max_retries:
                        job.retries[idx] = tries + 1
                        job.pending.append(idx)
                    else:
                        job.lost[idx] = str(payload)
                self._maybe_finish(job)
        else:  # trial raised: the job cannot produce its grid
            message = (
                f"{type(payload).__name__}: {payload}"
                if isinstance(payload, BaseException)
                else str(payload)
            )
            for job, idx in owners:
                self._inflight[job.id] -= 1
                with job.cond:
                    job.error = f"trial {idx} failed: {message}"
                job.set_state("failed")

    def _maybe_finish(self, job: Job) -> None:
        """Finalize a job whose last trial just resolved."""
        with job.cond:
            if job.state in ("done", "partial", "failed", "cancelled"):
                return
            busy = (
                job.pending
                or self._inflight.get(job.id, 0) > 0
                or job.completed + len(job.lost) < job.total
            )
            if busy:
                return
        if job.lost:
            with job.cond:
                job.error = (
                    f"{len(job.lost)} of {job.total} trials lost to worker "
                    "crashes after retries"
                )
            job.set_state("partial")
        elif job.subset:
            # a sub-grid shard job: rows are the product (the cluster
            # coordinator reassembles and aggregates the full grid) —
            # aggregating a partial plan would be meaningless
            job.set_state("done")
        else:
            # session-level cache counters (mmap vs pickle hit paths)
            # accumulated since the previous job finalised — the flush
            # below resets them, so in the single scheduler thread they
            # approximate this job's share
            stats = self.cache.stats if self.cache is not None else None
            job.report = self.session.build_report(
                job.spec,
                job.rows,
                execution={
                    "workers": self.pool.workers,
                    "total_trials": job.total,
                    "cache_hits": job.cached,
                    "executed": job.total - job.cached,
                    "cached": self.cache is not None,
                    "cache_hits_mmap": stats.hits_mmap if stats else 0,
                    "cache_hits_pickle": stats.hits_pickle if stats else 0,
                },
            )
            job.set_state("done")
        if self.cache is not None:
            self.cache.flush_stats()
