"""The profiling server: a persistent Session behind a TCP socket.

:class:`ProfilingServer` composes the serve stack — bounded
:class:`~repro.serve.queue.JobQueue`, fair
:class:`~repro.serve.scheduler.Scheduler`, persistent
:class:`~repro.orchestrate.WorkerPool`, shared
:class:`~repro.orchestrate.ResultCache` — behind the line-delimited
JSON protocol of :mod:`repro.serve.protocol`.  Each client connection
gets a handler thread that serves any number of requests; ``stream``
holds the connection open and pushes row events as trials land.  A
client that disconnects mid-stream only ends its own handler: the job
keeps running and completes into the cache.

Lifecycle::

    with ProfilingServer(workers=4, cache=ResultCache(dir)) as srv:
        srv.start()                  # scheduler + listener threads
        host, port = srv.address     # port 0 above -> OS-assigned
        ...
    # or, blocking (the `repro serve` CLI): srv.serve_forever()

The ``shutdown`` op (or :meth:`stop`) stops the listener, the
scheduler, and the worker pool.
"""

from __future__ import annotations

import socketserver
import threading
from typing import Any, BinaryIO

from repro.errors import ReproError, ScenarioError, ServeError
from repro.machine.spec import MachineSpec
from repro.orchestrate import ResultCache, WorkerPool, cache_key
from repro.scenarios.session import _json_safe
from repro.scenarios.spec import ScenarioSpec
from repro.serve import protocol
from repro.serve.queue import Job, JobQueue
from repro.serve.scheduler import Scheduler
from repro.substrate import FORMAT_VERSION as SUBSTRATE_VERSION
from repro.substrate import transport as shm_transport

#: seconds a stream waits per poll before re-checking job state
_STREAM_POLL_S = 0.1


class _Listener(socketserver.ThreadingTCPServer):
    """Per-connection handler threads over one shared server core."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, addr, server: "ProfilingServer") -> None:
        self.profiling_server = server
        super().__init__(addr, _Handler)


class _Handler(socketserver.StreamRequestHandler):
    """One client connection: read request lines, write response lines."""

    def handle(self) -> None:
        server = self.server.profiling_server
        while not server.stopping.is_set():
            try:
                msg = protocol.read_message(self.rfile)
            except protocol.ProtocolError as e:
                protocol.write_message(
                    self.wfile,
                    protocol.error_response("bad_request", str(e)),
                )
                return
            except (ConnectionError, OSError):
                return
            if msg is None:
                return  # clean EOF
            try:
                keep_going = server.dispatch(msg, self.wfile)
            except (BrokenPipeError, ConnectionError, OSError):
                return  # client went away; the job lives on
            if not keep_going:
                return


class ProfilingServer:
    """A long-running profiling service over one worker pool and cache."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        cache: ResultCache | None = None,
        machine: MachineSpec | None = None,
        queue_limit: int = 16,
        max_retries: int = 1,
    ) -> None:
        self.queue = JobQueue(limit=queue_limit)
        self.pool = WorkerPool(workers=workers)
        self.scheduler = Scheduler(
            self.queue,
            self.pool,
            cache=cache,
            machine=machine,
            max_retries=max_retries,
        )
        self.cache = cache
        self.stopping = threading.Event()
        self._listener = _Listener((host, port), self)
        self._listener_thread: threading.Thread | None = None
        self._started = False

    # -- lifecycle ---------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — resolved even when ``port=0``."""
        return self._listener.server_address[:2]

    def start(self) -> None:
        """Start the scheduler and the listener thread; returns at once."""
        if self._started:
            return
        self._started = True
        self.scheduler.start()
        self._listener_thread = threading.Thread(
            target=self._listener.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="serve-listener",
            daemon=True,
        )
        self._listener_thread.start()

    def serve_forever(self) -> None:
        """Start and block until a ``shutdown`` request (the CLI path)."""
        self.start()
        try:
            self.stopping.wait()
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()

    def stop(self) -> None:
        """Stop listener, scheduler, and pool; idempotent."""
        self.stopping.set()
        self._listener.shutdown()
        self._listener.server_close()
        if self._listener_thread is not None:
            self._listener_thread.join(timeout=5.0)
            self._listener_thread = None
        self.scheduler.stop()
        self.pool.close()

    def __enter__(self) -> "ProfilingServer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- request dispatch --------------------------------------------------

    def dispatch(self, msg: dict[str, Any], wfile: BinaryIO) -> bool:
        """Serve one request onto ``wfile``; False closes the connection."""
        op, params = protocol.parse_request(msg)
        if op is None:
            protocol.write_message(
                wfile,
                protocol.error_response(
                    "bad_request",
                    f"unknown or missing op {msg.get('op')!r}; "
                    f"known: {', '.join(protocol.OPS)}",
                ),
            )
            return True
        try:
            if op == "stream":
                return self._op_stream(params, wfile)
            response = getattr(self, f"_op_{op}")(params)
        except ServeError as e:
            response = protocol.error_response(
                e.code, str(e), **_json_safe(e.details)
            )
        except ScenarioError as e:
            response = protocol.error_response("bad_spec", str(e))
        except ReproError as e:
            response = protocol.error_response("bad_request", str(e))
        protocol.write_message(wfile, response)
        return op != "shutdown"

    # -- ops ---------------------------------------------------------------

    def _require_job(self, params: dict[str, Any]) -> Job:
        job_id = params.get("job_id")
        if not isinstance(job_id, str):
            raise ServeError("request needs a string job_id")
        return self.queue.get(job_id)

    def _op_submit(self, params: dict[str, Any]) -> dict[str, Any]:
        spec_dict = params.get("spec")
        if not isinstance(spec_dict, dict):
            raise ServeError("submit needs a spec object")
        spec = ScenarioSpec.from_dict(spec_dict)
        priority = params.get("priority", 0)
        if not isinstance(priority, int):
            raise ServeError("priority must be an integer")
        trial_specs = self.scheduler.session.plan(spec)
        keys = [
            cache_key(t.experiment, t.config, t.seed) for t in trial_specs
        ]
        job = self.queue.submit(spec, trial_specs, keys, priority=priority)
        with self.queue.changed:
            self.queue.changed.notify_all()
        return protocol.ok_response(
            job_id=job.id,
            state=job.state,
            trials=job.total,
            spec_hash=spec.spec_hash(),
        )

    def _op_status(self, params: dict[str, Any]) -> dict[str, Any]:
        return protocol.ok_response(**self._require_job(params).snapshot())

    def _op_results(self, params: dict[str, Any]) -> dict[str, Any]:
        job = self._require_job(params)
        snap = job.snapshot()
        state = snap["state"]
        if state not in ("done", "partial"):
            code = "not_finished" if state in ("queued", "running") else "job_failed"
            raise ServeError(
                f"job {job.id} is {state}; results need done/partial",
                code=code,
                state=state,
                error=snap["error"],
            )
        with job.cond:
            rows = [
                {"index": e["index"], "cached": e["cached"],
                 "row": _json_safe(e["row"])}
                for e in job.events
            ]
            report = job.report.to_dict() if job.report is not None else None
        return protocol.ok_response(
            job_id=job.id, state=state, rows=rows, report=report,
            lost=snap["lost"], error=snap["error"],
        )

    def _op_stream(self, params: dict[str, Any], wfile: BinaryIO) -> bool:
        try:
            job = self._require_job(params)
        except ServeError as e:
            protocol.write_message(
                wfile, protocol.error_response(e.code, str(e))
            )
            return True
        protocol.write_message(
            wfile,
            protocol.ok_response(
                job_id=job.id, streaming=True, trials=job.total
            ),
        )
        sent = 0
        while not self.stopping.is_set():
            events, state = job.events_since(sent, timeout=_STREAM_POLL_S)
            for e in events:
                protocol.write_message(
                    wfile,
                    {
                        "event": "row",
                        "index": e["index"],
                        "cached": e["cached"],
                        "row": _json_safe(e["row"]),
                    },
                )
                sent += 1
            if state in ("done", "partial", "failed", "cancelled"):
                with job.cond:
                    drained = sent >= len(job.events)
                if drained:
                    protocol.write_message(
                        wfile,
                        {"event": "end", "state": state,
                         "error": job.error},
                    )
                    return True
        return False

    def _op_cancel(self, params: dict[str, Any]) -> dict[str, Any]:
        job = self._require_job(params)
        state = self.queue.cancel(job.id)
        return protocol.ok_response(job_id=job.id, state=state)

    def _op_ping(self, _params: dict[str, Any]) -> dict[str, Any]:
        return protocol.ok_response(
            protocol=protocol.PROTOCOL_VERSION,
            workers=self.pool.workers,
            worker_pids=self.pool.pids(),
            active_jobs=self.queue.active_count(),
            queue_limit=self.queue.limit,
            trials_executed=self.scheduler.trials_executed,
            trials_cached=self.scheduler.trials_cached,
            cached=self.cache is not None,
            transport=shm_transport(),
            substrate=SUBSTRATE_VERSION,
        )

    def _op_shutdown(self, _params: dict[str, Any]) -> dict[str, Any]:
        # reply first (dispatch returns False to close this connection),
        # then stop from another thread so the listener can unwind
        threading.Thread(target=self.stop, daemon=True).start()
        return protocol.ok_response(stopping=True)
