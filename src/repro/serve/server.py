"""The profiling server: a persistent Session behind a TCP socket.

Two classes live here:

:class:`ServerBase`
    The transport and job bookkeeping every repro service shares — the
    TCP listener with one handler thread per connection, request
    dispatch with structured error mapping, and the job-centric ops
    (``status`` / ``results`` / ``stream`` / ``cancel`` / ``shutdown``)
    that only need a :class:`~repro.serve.queue.JobQueue`.  Subclasses
    provide admission (``submit``) and liveness (``ping``).  The
    :meth:`ServerBase.call` / :meth:`ServerBase.stream_events` pair is
    the same dispatch surface without a socket, which is what the
    HTTP/JSON gateway (:mod:`repro.cluster.http`) and in-process tests
    drive — one semantics, many transports.

:class:`ProfilingServer`
    The single-host service: :class:`ServerBase` composed with a
    bounded :class:`~repro.serve.queue.JobQueue`, fair
    :class:`~repro.serve.scheduler.Scheduler`, persistent
    :class:`~repro.orchestrate.WorkerPool`, and shared
    :class:`~repro.orchestrate.ResultCache`.  ``submit`` may carry
    ``trial_indices`` to run a *sub-grid* of the spec's plan — the
    primitive the cluster coordinator shards jobs with (cache keys are
    planned identically, so a sub-grid row is byte-identical to the
    same row in a full run).

Each client connection gets a handler thread that serves any number of
requests; ``stream`` holds the connection open and pushes row events
as trials land.  A client that disconnects mid-stream only ends its
own handler: the job keeps running and completes into the cache.

Lifecycle::

    with ProfilingServer(workers=4, cache=ResultCache(dir)) as srv:
        srv.start()                  # scheduler + listener threads
        host, port = srv.address     # port 0 above -> OS-assigned
        ...
    # or, blocking (the `repro serve` CLI): srv.serve_forever()

The ``shutdown`` op (or :meth:`ServerBase.stop`) stops the listener
and every composed component.
"""

from __future__ import annotations

import socketserver
import threading
from typing import Any, BinaryIO, Iterator

from repro.errors import ReproError, ScenarioError, ServeError
from repro.machine.spec import MachineSpec
from repro.orchestrate import ResultCache, WorkerPool, cache_key
from repro.scenarios.session import _json_safe
from repro.scenarios.spec import ScenarioSpec
from repro.serve import protocol
from repro.serve.queue import Job, JobQueue
from repro.serve.scheduler import Scheduler
from repro.substrate import FORMAT_VERSION as SUBSTRATE_VERSION
from repro.substrate import transport as shm_transport

#: seconds a stream waits per poll before re-checking job state
_STREAM_POLL_S = 0.1


class _Listener(socketserver.ThreadingTCPServer):
    """Per-connection handler threads over one shared server core."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, addr, server: "ServerBase") -> None:
        self.profiling_server = server
        super().__init__(addr, _Handler)


class _Handler(socketserver.StreamRequestHandler):
    """One client connection: read request lines, write response lines."""

    def handle(self) -> None:
        server = self.server.profiling_server
        while not server.stopping.is_set():
            try:
                msg = protocol.read_message(self.rfile)
            except protocol.ProtocolError as e:
                protocol.write_message(
                    self.wfile,
                    protocol.error_response("bad_request", str(e)),
                )
                return
            except (ConnectionError, OSError):
                return
            if msg is None:
                return  # clean EOF
            try:
                keep_going = server.dispatch(msg, self.wfile)
            except (BrokenPipeError, ConnectionError, OSError):
                return  # client went away; the job lives on
            if not keep_going:
                return


class ServerBase:
    """Socket transport + job ops shared by every repro service.

    Subclasses own a :class:`~repro.serve.queue.JobQueue` as
    :attr:`queue` and implement ``_op_submit`` / ``_op_ping`` (and any
    extra ``_op_<name>`` listed in their :attr:`OPS` extension);
    everything else — listening, dispatch, streaming, cancellation,
    shutdown — is inherited.
    """

    #: operations this server accepts; subclasses may extend the tuple
    OPS: tuple[str, ...] = protocol.OPS

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self.queue: JobQueue  # provided by the subclass before start()
        self.stopping = threading.Event()
        self._listener = _Listener((host, port), self)
        self._listener_thread: threading.Thread | None = None
        self._started = False
        # the shutdown op and __exit__ can race into stop(); serialize
        # so whoever returns from stop() sees a fully-closed server
        self._stop_lock = threading.Lock()

    # -- lifecycle ---------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — resolved even when ``port=0``."""
        return self._listener.server_address[:2]

    def start(self) -> None:
        """Start the component threads and the listener; returns at once."""
        if self._started:
            return
        self._started = True
        self._start_components()
        self._listener_thread = threading.Thread(
            target=self._listener.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="serve-listener",
            daemon=True,
        )
        self._listener_thread.start()

    def serve_forever(self) -> None:
        """Start and block until a ``shutdown`` request (the CLI path)."""
        self.start()
        try:
            self.stopping.wait()
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()

    def stop(self) -> None:
        """Stop listener and composed components; idempotent.

        Safe after a *failed* :meth:`start` too: ``shutdown()`` on a
        listener whose ``serve_forever`` never ran would block forever,
        so it is only issued when the listener thread actually exists.
        """
        self.stopping.set()
        with self._stop_lock:
            thread, self._listener_thread = self._listener_thread, None
            if thread is not None:
                self._listener.shutdown()
                thread.join(timeout=5.0)
            self._listener.server_close()
            self._stop_components()

    def _start_components(self) -> None:
        """Subclass hook: start scheduler/dispatcher threads."""

    def _stop_components(self) -> None:
        """Subclass hook: stop pools/schedulers/clients."""

    def __enter__(self) -> "ServerBase":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- request dispatch --------------------------------------------------

    def call(self, op: str, params: dict[str, Any]) -> dict[str, Any]:
        """Serve one non-stream request as a response dict.

        The socketless dispatch surface: identical semantics and error
        mapping to a request line over the socket, returned instead of
        written — what the HTTP gateway and in-process callers use.
        """
        try:
            if op not in self.OPS or op == "stream":
                raise ServeError(
                    f"unknown or missing op {op!r}; "
                    f"known: {', '.join(self.OPS)}"
                )
            return getattr(self, f"_op_{op}")(params)
        except ServeError as e:
            return protocol.error_response(
                e.code, str(e), **_json_safe(e.details)
            )
        except ScenarioError as e:
            return protocol.error_response("bad_spec", str(e))
        except ReproError as e:
            return protocol.error_response("bad_request", str(e))

    def dispatch(self, msg: dict[str, Any], wfile: BinaryIO) -> bool:
        """Serve one request onto ``wfile``; False closes the connection."""
        skew = protocol.check_protocol(msg)
        if skew is not None:
            protocol.write_message(wfile, skew)
            return True
        op, params = protocol.parse_request(msg, self.OPS)
        if op is None:
            protocol.write_message(
                wfile,
                protocol.error_response(
                    "bad_request",
                    f"unknown or missing op {msg.get('op')!r}; "
                    f"known: {', '.join(self.OPS)}",
                ),
            )
            return True
        if op == "stream":
            return self._op_stream(params, wfile)
        protocol.write_message(wfile, self.call(op, params))
        return op != "shutdown"

    # -- shared ops --------------------------------------------------------

    def _require_job(self, params: dict[str, Any]) -> Job:
        job_id = params.get("job_id")
        if not isinstance(job_id, str):
            raise ServeError("request needs a string job_id")
        return self.queue.get(job_id)

    def _op_status(self, params: dict[str, Any]) -> dict[str, Any]:
        return protocol.ok_response(**self._require_job(params).snapshot())

    def _op_results(self, params: dict[str, Any]) -> dict[str, Any]:
        job = self._require_job(params)
        snap = job.snapshot()
        state = snap["state"]
        if state not in ("done", "partial"):
            code = "not_finished" if state in ("queued", "running") else "job_failed"
            raise ServeError(
                f"job {job.id} is {state}; results need done/partial",
                code=code,
                state=state,
                error=snap["error"],
            )
        with job.cond:
            rows = [
                {"index": e["index"], "cached": e["cached"],
                 "row": _json_safe(e["row"])}
                for e in job.events
            ]
            report = job.report.to_dict() if job.report is not None else None
        return protocol.ok_response(
            job_id=job.id, state=state, rows=rows, report=report,
            lost=snap["lost"], error=snap["error"],
        )

    def stream_events(
        self, params: dict[str, Any]
    ) -> Iterator[dict[str, Any]]:
        """Yield one job's stream messages: the ack, every ``row``
        event, then ``end`` — the transport-agnostic body of the
        ``stream`` op (socket handlers write the dicts as lines, the
        HTTP gateway as chunks).  Raises :class:`ServeError` before the
        first yield for unknown jobs; ends without an ``end`` event
        only if the server is stopping.
        """
        job = self._require_job(params)
        yield protocol.ok_response(
            job_id=job.id, streaming=True, trials=job.total
        )
        sent = 0
        while not self.stopping.is_set():
            events, state = job.events_since(sent, timeout=_STREAM_POLL_S)
            for e in events:
                yield {
                    "event": "row",
                    "index": e["index"],
                    "cached": e["cached"],
                    "row": _json_safe(e["row"]),
                }
                sent += 1
            if state in ("done", "partial", "failed", "cancelled"):
                with job.cond:
                    drained = sent >= len(job.events)
                if drained:
                    yield {"event": "end", "state": state, "error": job.error}
                    return

    def _op_stream(self, params: dict[str, Any], wfile: BinaryIO) -> bool:
        try:
            stream = self.stream_events(params)
            first = next(stream)
        except ServeError as e:
            protocol.write_message(
                wfile, protocol.error_response(e.code, str(e))
            )
            return True
        protocol.write_message(wfile, first)
        ended = False
        for event in stream:
            protocol.write_message(wfile, event)
            ended = event.get("event") == "end"
        return ended  # a stopping server closes the connection instead

    def _op_cancel(self, params: dict[str, Any]) -> dict[str, Any]:
        job = self._require_job(params)
        state = self.queue.cancel(job.id)
        return protocol.ok_response(job_id=job.id, state=state)

    def _op_shutdown(self, _params: dict[str, Any]) -> dict[str, Any]:
        # reply first (dispatch returns False to close this connection),
        # then stop from another thread so the listener can unwind
        threading.Thread(target=self.stop, daemon=True).start()
        return protocol.ok_response(stopping=True)


class ProfilingServer(ServerBase):
    """A long-running profiling service over one worker pool and cache."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        cache: ResultCache | None = None,
        machine: MachineSpec | None = None,
        queue_limit: int = 16,
        max_retries: int = 1,
    ) -> None:
        super().__init__(host, port)
        self.queue = JobQueue(limit=queue_limit)
        self.pool = WorkerPool(workers=workers)
        self.scheduler = Scheduler(
            self.queue,
            self.pool,
            cache=cache,
            machine=machine,
            max_retries=max_retries,
        )
        self.cache = cache

    def _start_components(self) -> None:
        self.scheduler.start()

    def _stop_components(self) -> None:
        self.scheduler.stop()
        self.pool.close()

    # -- ops ---------------------------------------------------------------

    def _op_submit(self, params: dict[str, Any]) -> dict[str, Any]:
        spec_dict = params.get("spec")
        if not isinstance(spec_dict, dict):
            raise ServeError("submit needs a spec object")
        spec = ScenarioSpec.from_dict(spec_dict)
        priority = params.get("priority", 0)
        if not isinstance(priority, int):
            raise ServeError("priority must be an integer")
        trial_specs = self.scheduler.session.plan(spec)
        indices = params.get("trial_indices")
        subset = False
        if indices is not None:
            indices = self._checked_indices(indices, len(trial_specs))
            trial_specs = [trial_specs[i] for i in indices]
            subset = True
        keys = [
            cache_key(t.experiment, t.config, t.seed) for t in trial_specs
        ]
        job = self.queue.submit(
            spec, trial_specs, keys, priority=priority, subset=subset
        )
        with self.queue.changed:
            self.queue.changed.notify_all()
        return protocol.ok_response(
            job_id=job.id,
            state=job.state,
            trials=job.total,
            spec_hash=spec.spec_hash(),
        )

    @staticmethod
    def _checked_indices(indices: Any, total: int) -> list[int]:
        """Validate a submit's ``trial_indices`` against the plan size."""
        if (
            not isinstance(indices, list)
            or not indices
            or not all(isinstance(i, int) and not isinstance(i, bool)
                       for i in indices)
        ):
            raise ServeError(
                "trial_indices must be a non-empty list of integers"
            )
        if len(set(indices)) != len(indices):
            raise ServeError("trial_indices must not repeat an index")
        bad = [i for i in indices if not 0 <= i < total]
        if bad:
            raise ServeError(
                f"trial_indices out of range for a {total}-trial plan: {bad}"
            )
        return list(indices)

    def _op_ping(self, _params: dict[str, Any]) -> dict[str, Any]:
        return protocol.ok_response(
            protocol=protocol.PROTOCOL_VERSION,
            workers=self.pool.workers,
            worker_pids=self.pool.pids(),
            active_jobs=self.queue.active_count(),
            queue_limit=self.queue.limit,
            trials_executed=self.scheduler.trials_executed,
            trials_cached=self.scheduler.trials_cached,
            cached=self.cache is not None,
            transport=shm_transport(),
            substrate=SUBSTRATE_VERSION,
        )
