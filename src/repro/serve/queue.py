"""Job queue for the profiling service: states, priorities, admission.

A :class:`Job` is one submitted scenario — its planned trial grid,
per-trial cache keys, landed rows, and a state machine::

    queued ──► running ──► done        (every trial landed)
                   │   └──► partial    (some trials lost for good)
                   ├──────► failed     (a trial raised)
    queued/running ───────► cancelled  (client asked)

``partial``/``done``/``failed``/``cancelled`` are terminal.  Rows land
append-only in ``events`` (the stream clients replay) and positionally
in ``rows`` (what the final report aggregates); each job carries its
own condition variable so streaming readers wake exactly when a row
lands or the state flips.

:class:`JobQueue` provides **bounded admission**: at most ``limit``
jobs may be active (queued or running) at once, and a submit beyond
that is rejected immediately with a structured
:class:`~repro.errors.QueueFullError` — backpressure the client can
see and act on, never a silent hang.  Priorities are honoured at
dispatch time by the scheduler (higher first, FIFO within a class);
terminal jobs stay retrievable for ``results`` until evicted by
:meth:`JobQueue.prune`.
"""

from __future__ import annotations

import itertools
import threading
from typing import Any

from repro.errors import QueueFullError, ServeError
from repro.orchestrate import TrialSpec
from repro.scenarios.spec import ScenarioSpec

#: every state a job can be in
JOB_STATES = ("queued", "running", "done", "partial", "failed", "cancelled")

#: states in which no further work happens
TERMINAL_STATES = frozenset({"done", "partial", "failed", "cancelled"})


class Job:
    """One submitted scenario and everything it has produced so far.

    All mutable fields are guarded by :attr:`cond`'s lock; readers
    should use :meth:`snapshot` / :meth:`events_since` instead of
    touching fields directly.
    """

    def __init__(
        self,
        job_id: str,
        seq: int,
        spec: ScenarioSpec,
        priority: int,
        trial_specs: list[TrialSpec],
        keys: list[str],
        subset: bool = False,
    ) -> None:
        self.id = job_id
        self.seq = seq
        self.spec = spec
        self.priority = priority
        self.trial_specs = trial_specs
        self.keys = keys
        #: True when the grid is a sub-slice of the spec's full plan (a
        #: cluster shard's share); subset jobs produce rows but never a
        #: report — only the full grid aggregates meaningfully
        self.subset = subset
        self.state = "queued"
        self.cond = threading.Condition()
        #: positional trial results (None = not landed / lost)
        self.rows: list[Any] = [None] * len(trial_specs)
        #: append-only landed-row event dicts, in landing order
        self.events: list[dict] = []
        #: trial indices not yet dispatched (the scheduler's work list)
        self.pending: list[int] = list(range(len(trial_specs)))
        #: per-trial retry counts after worker loss
        self.retries: dict[int, int] = {}
        #: indices lost for good (reported in the partial outcome)
        self.lost: dict[int, str] = {}
        self.cached = 0
        self.completed = 0
        self.error: str | None = None
        self.report: Any = None  # RunReport once terminal and aggregable

    # -- state -------------------------------------------------------------

    @property
    def total(self) -> int:
        """Trial-grid size."""
        return len(self.trial_specs)

    def is_terminal(self) -> bool:
        """Whether the job reached a terminal state (lock-free read)."""
        return self.state in TERMINAL_STATES

    def set_state(self, state: str) -> None:
        """Transition (no-op when already terminal) and wake waiters."""
        assert state in JOB_STATES, state
        with self.cond:
            if self.state in TERMINAL_STATES:
                return
            self.state = state
            self.cond.notify_all()

    def land_row(self, index: int, row: Any, cached: bool) -> None:
        """Record one finished trial and wake streaming readers.

        Idempotent per index: a re-landed row (a cluster shard retried
        after its first agent died mid-pull) updates nothing and emits
        no second event, so streams carry exactly one row per trial.
        """
        with self.cond:
            if self.rows[index] is None:
                self.completed += 1
                self.cached += 1 if cached else 0
                self.rows[index] = row
                self.events.append(
                    {"index": index, "cached": cached, "row": row}
                )
            self.cond.notify_all()

    # -- reads -------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """A consistent status view (what the ``status`` op returns)."""
        with self.cond:
            return {
                "job_id": self.id,
                "state": self.state,
                "priority": self.priority,
                "spec_name": self.spec.name,
                "spec_hash": self.spec.spec_hash(),
                "kind": self.spec.kind,
                "total": self.total,
                "completed": self.completed,
                "cached": self.cached,
                "lost": sorted(self.lost),
                "error": self.error,
                "subset": self.subset,
            }

    def events_since(self, start: int, timeout: float) -> tuple[list, str]:
        """Events landed at/after ``start`` plus the state, blocking up
        to ``timeout`` seconds when there is nothing new yet."""
        with self.cond:
            if len(self.events) <= start and self.state not in TERMINAL_STATES:
                self.cond.wait(timeout=timeout)
            return list(self.events[start:]), self.state

    def wait_terminal(self, timeout: float | None = None) -> str:
        """Block until the job is terminal (or timeout); returns state."""
        with self.cond:
            self.cond.wait_for(
                lambda: self.state in TERMINAL_STATES, timeout=timeout
            )
            return self.state


class JobQueue:
    """Bounded, priority-aware registry of jobs.

    The queue is the synchronisation point between protocol handler
    threads (submitting, cancelling) and the scheduler thread
    (dispatching): :attr:`changed` is notified on every admission or
    cancellation so the scheduler never polls blind.
    """

    def __init__(self, limit: int = 16) -> None:
        if limit < 1:
            raise ServeError(f"queue limit must be >= 1, got {limit}")
        self.limit = limit
        self._jobs: dict[str, Job] = {}
        self._seq = itertools.count()
        # reentrant: the scheduler inspects the queue while holding
        # ``changed`` (same lock) during its idle wait
        self._lock = threading.RLock()
        self.changed = threading.Condition(self._lock)

    # -- admission ---------------------------------------------------------

    def active_count(self) -> int:
        """Jobs currently queued or running (what admission bounds)."""
        with self._lock:
            return self._active_locked()

    def _active_locked(self) -> int:
        return sum(1 for j in self._jobs.values() if not j.is_terminal())

    def submit(
        self,
        spec: ScenarioSpec,
        trial_specs: list[TrialSpec],
        keys: list[str],
        priority: int = 0,
        subset: bool = False,
        job_id: str | None = None,
        force: bool = False,
    ) -> Job:
        """Admit a job or raise :class:`QueueFullError` with the facts.

        ``job_id`` pins the identity instead of minting one — the
        coordinator's journal resume re-admits a crashed-through job
        under its original id so clients polling it keep working.
        ``force`` bypasses the admission bound (resume must re-adopt
        every journaled job, even more than ``limit`` of them).
        """
        with self._lock:
            active = self._active_locked()
            if active >= self.limit and not force:
                raise QueueFullError(
                    f"job queue is full ({active}/{self.limit} active jobs); "
                    "retry after a job finishes",
                    active=active,
                    limit=self.limit,
                )
            if job_id is not None and job_id in self._jobs:
                raise ServeError(
                    f"job id {job_id!r} already exists", job_id=job_id
                )
            seq = next(self._seq)
            if job_id is None:
                job_id = f"job-{seq}-{spec.spec_hash()[:8]}"
            job = Job(
                job_id, seq, spec, int(priority), trial_specs, keys,
                subset=subset,
            )
            self._jobs[job_id] = job
            self.changed.notify_all()
            return job

    # -- lookup ------------------------------------------------------------

    def get(self, job_id: str) -> Job:
        """The job by id, or a structured ``unknown_job`` error."""
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise ServeError(
                    f"unknown job {job_id!r}", code="unknown_job"
                ) from None

    def jobs(self) -> list[Job]:
        """Every known job, in submission order."""
        with self._lock:
            return sorted(self._jobs.values(), key=lambda j: j.seq)

    def runnable(self) -> list[Job]:
        """Non-terminal jobs in dispatch order: priority desc, FIFO in."""
        with self._lock:
            live = [j for j in self._jobs.values() if not j.is_terminal()]
        return sorted(live, key=lambda j: (-j.priority, j.seq))

    # -- mutation ----------------------------------------------------------

    def cancel(self, job_id: str) -> str:
        """Cancel a job (idempotent on terminal jobs); returns its state."""
        job = self.get(job_id)
        job.set_state("cancelled")
        with self._lock:
            self.changed.notify_all()
        return job.state

    def prune(self, keep: int = 256) -> int:
        """Drop the oldest terminal jobs beyond ``keep``; returns dropped."""
        with self._lock:
            done = sorted(
                (j for j in self._jobs.values() if j.is_terminal()),
                key=lambda j: j.seq,
            )
            drop = done[: max(0, len(done) - keep)]
            for j in drop:
                del self._jobs[j.id]
            return len(drop)
