"""The serve wire protocol: line-delimited JSON over a stream socket.

Every message — request, response, or stream event — is one JSON
object on one ``\\n``-terminated line, UTF-8 encoded.  Requests carry
an ``op`` from :data:`OPS`; responses carry ``ok`` (and, on failure,
a structured ``error`` object with a machine-readable ``code``), so
clients never have to parse prose to tell a full queue from a bad
spec.  ``stream`` responses are the one multi-line case: an ``ok``
acknowledgement, then ``{"event": "row", ...}`` lines as trials land,
closed by ``{"event": "end", "state": ...}``.

The protocol is deliberately dependency-free (sockets + json) and
versioned via :data:`PROTOCOL_VERSION`, which the server reports in
``ping`` responses.  See ``docs/serving.md`` for the full op table
and job lifecycle.
"""

from __future__ import annotations

import json
from typing import Any, BinaryIO

from repro.errors import ReproError

#: protocol revision reported by ``ping``; bump on wire-format changes
PROTOCOL_VERSION = 1

#: request operations the server understands
OPS = (
    "submit", "status", "results", "stream", "cancel", "shutdown", "ping",
)

#: structured error codes a response's ``error.code`` may carry
ERROR_CODES = (
    "bad_request",    # not JSON / no op / unknown op / missing field
    "bad_spec",       # submit payload failed ScenarioSpec validation
    "queue_full",     # admission rejected: the job queue is at capacity
    "unknown_job",    # status/results/stream/cancel for an unknown id
    "not_finished",   # results requested before the job reached a terminal state
    "job_failed",     # results requested for a failed/cancelled job
    "quota_exceeded",  # admission rejected: the tenant's token bucket is dry
    "protocol_mismatch",  # peer speaks a different PROTOCOL_VERSION
    "connect_failed",  # client could not reach the server (retries exhausted)
    "deadline_exceeded",  # the op's overall RetryPolicy deadline ran out
)

#: hard per-line ceiling (a full scenario spec is ~1 KiB; 8 MiB leaves
#: room for large streamed result rows while bounding a hostile peer)
MAX_LINE_BYTES = 8 << 20


class ProtocolError(ReproError):
    """A malformed or oversized protocol line."""


def encode_message(obj: dict[str, Any]) -> bytes:
    """One message as its canonical wire line (sorted keys + newline)."""
    return (
        json.dumps(obj, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def decode_message(line: bytes) -> dict[str, Any]:
    """Parse one wire line back into a message dict."""
    try:
        obj = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as e:
        raise ProtocolError(f"message is not valid JSON: {e}") from None
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"message must be a JSON object, got {type(obj).__name__}"
        )
    return obj


def write_message(stream: BinaryIO, obj: dict[str, Any]) -> None:
    """Write one message line and flush it onto the wire."""
    stream.write(encode_message(obj))
    stream.flush()


def read_message(stream: BinaryIO) -> dict[str, Any] | None:
    """Read one message line; ``None`` on a clean EOF."""
    line = stream.readline(MAX_LINE_BYTES + 1)
    if not line:
        return None
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            f"message exceeds {MAX_LINE_BYTES} bytes (unterminated line?)"
        )
    if line.strip() == b"":
        return {}
    return decode_message(line)


def ok_response(**fields: Any) -> dict[str, Any]:
    """A success response carrying ``fields``."""
    return {"ok": True, **fields}


def error_response(code: str, reason: str, **details: Any) -> dict[str, Any]:
    """A failure response with a machine-readable error object."""
    assert code in ERROR_CODES, code
    return {"ok": False, "error": {"code": code, "reason": reason, **details}}


def parse_request(
    msg: dict[str, Any], ops: tuple[str, ...] = OPS
) -> tuple[str | None, dict[str, Any]]:
    """Split a request into ``(op, params)``; ``op=None`` if invalid.

    ``ops`` lets protocol extensions (the cluster shard agents) accept
    their extra operations through the same parser.
    """
    op = msg.get("op")
    if not isinstance(op, str) or op not in ops:
        return None, {}
    return op, {k: v for k, v in msg.items() if k != "op"}


def check_protocol(msg: dict[str, Any]) -> dict[str, Any] | None:
    """Version-gate one request; an error response on skew, else None.

    A request may carry ``protocol`` (an int — the sender's
    :data:`PROTOCOL_VERSION`).  A mismatched peer gets a structured
    ``protocol_mismatch`` rejection naming both versions instead of
    undefined behavior on wire-format skew; requests without the field
    are accepted (version checking is opt-in per request, and
    :meth:`~repro.serve.ServerClient.handshake` opts in).
    """
    peer = msg.get("protocol")
    if peer is None or peer == PROTOCOL_VERSION:
        return None
    return error_response(
        "protocol_mismatch",
        f"peer speaks protocol {peer!r}, this server speaks "
        f"{PROTOCOL_VERSION}",
        server=PROTOCOL_VERSION,
        client=peer,
    )
