"""The unified retry/deadline policy for every client-side network op.

Before this module, timeout and retry behavior was a scatter of
hardcoded constants — a 60-second default request timeout here, a
10-second handshake timeout there, a 5-second cancel, exponential
backoff without jitter or a cap in :meth:`ServerClient.connect`.  One
:class:`RetryPolicy` now travels through
:class:`~repro.serve.ServerClient`,
:class:`~repro.cluster.Coordinator`,
:class:`~repro.cluster.HttpClusterClient`, and
:class:`~repro.cluster.CacheReplicator`, so a test can tighten every
timeout deterministically by injecting one object, and an operator can
loosen them cluster-wide the same way.

Two failure shapes come out of a policy-governed operation:

* attempts exhausted — the op's own error propagates (a structured
  ``connect_failed`` for connects, the server's error for requests);
* the overall :attr:`~RetryPolicy.deadline_s` expired — a structured
  :class:`~repro.errors.DeadlineExceededError` (protocol code
  ``deadline_exceeded``) carrying ``elapsed_s``/``budget_s``, so a
  caller can always distinguish "it kept failing" from "we ran out of
  time".

Backoff uses *full jitter*: retry ``k`` sleeps a uniform random
duration in ``[0, min(backoff_cap_s, base_backoff_s * 2**k)]``, which
avoids synchronized retry storms when many clients lose the same
coordinator at once.  The RNG, clock, and sleep are injectable so
tests assert exact schedules without wall-clock time.
"""

from __future__ import annotations

import dataclasses
import random
import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import DeadlineExceededError

__all__ = ["DEFAULT_POLICY", "Deadline", "RetryPolicy"]


class Deadline:
    """One operation's wall-clock budget, started at construction.

    ``budget_s=None`` means unbounded: :attr:`expired` is always False
    and :meth:`remaining_s` returns ``None``.  The clock is injectable
    (defaults to :func:`time.monotonic`).
    """

    def __init__(
        self,
        budget_s: float | None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.budget_s = budget_s
        self._clock = clock
        self._started = clock()

    @property
    def elapsed_s(self) -> float:
        """Seconds since the deadline started."""
        return self._clock() - self._started

    def remaining_s(self) -> float | None:
        """Seconds left in the budget (``None`` when unbounded)."""
        if self.budget_s is None:
            return None
        return max(0.0, self.budget_s - self.elapsed_s)

    @property
    def expired(self) -> bool:
        """True once the budget is spent (never, when unbounded)."""
        return self.budget_s is not None and self.elapsed_s >= self.budget_s

    def check(self, what: str = "operation", **details: Any) -> None:
        """Raise :class:`DeadlineExceededError` if the budget is spent."""
        if self.expired:
            raise DeadlineExceededError(
                f"{what} exceeded its {self.budget_s:g}s deadline "
                f"({self.elapsed_s:.3f}s elapsed)",
                budget_s=self.budget_s,
                elapsed_s=round(self.elapsed_s, 3),
                **details,
            )

    def cap(self, timeout: float | None) -> float | None:
        """``timeout`` clipped to the remaining budget (for sockets)."""
        remaining = self.remaining_s()
        if remaining is None:
            return timeout
        if timeout is None:
            return remaining
        return min(timeout, remaining)


@dataclass(frozen=True)
class RetryPolicy:
    """How many times, how long, and how patiently to try a network op.

    One frozen dataclass holds every knob the serving stack's clients
    need: attempt count, backoff shape (base, cap, full jitter),
    per-op and per-connect socket timeouts, and an optional overall
    wall-clock deadline.  Derive variants with :meth:`replace` — e.g.
    the membership prober uses ``policy.replace(max_attempts=1)``
    because its own probe cadence *is* the retry loop.
    """

    #: total attempts per operation (>= 1; 1 = fail fast, no retry)
    max_attempts: int = 3
    #: upper bound of the first retry's jittered backoff
    base_backoff_s: float = 0.1
    #: ceiling on any single backoff regardless of attempt number
    backoff_cap_s: float = 2.0
    #: full jitter: sleep U(0, bound) instead of the bound itself
    jitter: bool = True
    #: per-request socket timeout (None = no per-op timeout)
    op_timeout_s: float | None = 60.0
    #: per-TCP-connect ceiling (bounds each dial, not the whole loop)
    connect_timeout_s: float = 5.0
    #: overall wall-clock budget across all attempts (None = unbounded)
    deadline_s: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_backoff_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff durations must be >= 0")
        if self.connect_timeout_s <= 0:
            raise ValueError(
                f"connect_timeout_s must be > 0, got {self.connect_timeout_s}"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(
                f"deadline_s must be > 0 or None, got {self.deadline_s}"
            )

    # -- derivation --------------------------------------------------------

    def replace(self, **changes: Any) -> "RetryPolicy":
        """A copy with ``changes`` applied (frozen-dataclass update)."""
        return dataclasses.replace(self, **changes)

    # -- backoff -----------------------------------------------------------

    def backoff_bound(self, retry: int) -> float:
        """The exponential upper bound for retry ``retry`` (0-based)."""
        if self.base_backoff_s <= 0:
            return 0.0
        # deadline-driven loops can reach huge retry counts; clamp the
        # exponent so 2**retry never overflows float conversion
        return min(
            self.backoff_cap_s,
            self.base_backoff_s * (2.0 ** min(retry, 63)),
        )

    def backoff_s(
        self, retry: int, rng: random.Random | None = None
    ) -> float:
        """The actual sleep before retry ``retry``: jittered if enabled."""
        bound = self.backoff_bound(retry)
        if not self.jitter or bound <= 0:
            return bound
        return (rng or random).uniform(0.0, bound)

    # -- execution ---------------------------------------------------------

    def deadline(
        self, clock: Callable[[], float] = time.monotonic
    ) -> Deadline:
        """A fresh :class:`Deadline` carrying this policy's budget."""
        return Deadline(self.deadline_s, clock=clock)

    def call(
        self,
        fn: Callable[[], Any],
        *,
        describe: str = "operation",
        retry_on: tuple = (OSError, ConnectionError),
        rng: random.Random | None = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> Any:
        """Run ``fn`` under this policy: bounded retries, overall deadline.

        Exceptions in ``retry_on`` are retried with jittered backoff
        until :attr:`max_attempts` is spent (the last one re-raises) or
        the :attr:`deadline_s` budget expires (a structured
        :class:`~repro.errors.DeadlineExceededError` raises instead,
        chaining the last failure).  Any other exception propagates
        immediately — server-side errors are not transient.
        """
        deadline = self.deadline(clock)
        last: Exception | None = None
        for attempt in range(self.max_attempts):
            if attempt:
                pause = self.backoff_s(attempt - 1, rng)
                remaining = deadline.remaining_s()
                if remaining is not None and pause >= remaining:
                    # sleeping would outlive the budget: give up now,
                    # and say it was the deadline that decided
                    raise DeadlineExceededError(
                        f"{describe} gave up: the {pause:.3f}s backoff "
                        f"before attempt {attempt + 1} exceeds the "
                        f"remaining {remaining:.3f}s of its "
                        f"{self.deadline_s:g}s deadline",
                        budget_s=self.deadline_s,
                        elapsed_s=round(deadline.elapsed_s, 3),
                        attempts=attempt,
                    ) from last
                sleep(pause)
            try:
                deadline.check(describe, attempts=attempt + 1)
            except DeadlineExceededError as e:
                raise e from last
            try:
                return fn()
            except retry_on as e:
                last = e
        assert last is not None
        raise last


#: the stack-wide default: 3 attempts, 0.1s..2s full-jitter backoff,
#: 60s per op, 5s per connect, no overall deadline
DEFAULT_POLICY = RetryPolicy()
