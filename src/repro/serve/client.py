"""Client helper for the profiling service.

:class:`ServerClient` wraps one socket connection in typed methods for
every protocol op, raising :class:`~repro.errors.ServeError` (with the
server's structured ``code``/details) on failure responses so callers
can branch on ``queue_full`` vs ``bad_spec`` without parsing prose.

Quickstart::

    from repro.scenarios import load_scenario
    from repro.serve import ServerClient

    with ServerClient(port=7123) as client:
        outcome = client.run(load_scenario("quickstart"))
        for event in outcome.rows:
            print(event["index"], event["row"])
        print(outcome.report["provenance"]["spec_hash"])

:meth:`ServerClient.run` is the submit → stream → results convenience
loop; the individual ops (:meth:`submit`, :meth:`stream`,
:meth:`status`, :meth:`results`, :meth:`cancel`, :meth:`shutdown`)
compose for anything finer-grained.
"""

from __future__ import annotations

import random
import socket
import time
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.errors import ServeError
from repro.scenarios.spec import ScenarioSpec
from repro.serve import protocol
from repro.serve.policy import RetryPolicy


@dataclass
class RunOutcome:
    """Everything one :meth:`ServerClient.run` call produced.

    ``rows`` are the streamed row events in landing order (each with
    ``index``/``cached``/``row``); ``report`` is the server's final
    report dict (provenance/execution/spec/results) for ``done`` jobs,
    ``None`` for ``partial`` ones.
    """

    job_id: str
    state: str
    rows: list[dict] = field(default_factory=list)
    report: dict | None = None
    error: str | None = None


class ServerClient:
    """One connection to a :class:`~repro.serve.ProfilingServer`."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7123,
        timeout: float | None = 60.0,
        connect_timeout: float = 5.0,
        connect_retries: int = 2,
        backoff_s: float = 0.1,
        policy: RetryPolicy | None = None,
        rng: random.Random | None = None,
    ) -> None:
        self.host = host
        self.port = port
        if policy is None:
            # legacy kwargs synthesize a policy; jitter stays off for
            # them so existing callers keep deterministic schedules
            policy = RetryPolicy(
                max_attempts=1 + max(0, int(connect_retries)),
                base_backoff_s=backoff_s,
                jitter=False,
                op_timeout_s=timeout,
                connect_timeout_s=connect_timeout,
            )
        #: the :class:`~repro.serve.RetryPolicy` governing connect
        #: attempts, backoff shape, socket timeouts, and the overall
        #: connect deadline
        self.policy = policy
        self.timeout = policy.op_timeout_s
        #: per-attempt TCP connect ceiling — a dead or blackholed host
        #: fails the attempt in bounded time instead of blocking on the
        #: (much longer) request ``timeout``
        self.connect_timeout = policy.connect_timeout_s
        #: extra attempts after the first failure (0 = fail fast)
        self.connect_retries = policy.max_attempts - 1
        #: upper bound of retry ``k``'s backoff:
        #: ``min(backoff_cap_s, backoff_s * 2**k)`` (full jitter draws
        #: uniformly below it when the policy enables jitter)
        self.backoff_s = policy.base_backoff_s
        self._rng = rng
        self._sock: socket.socket | None = None
        self._rfile = None
        self._wfile = None

    # -- connection --------------------------------------------------------

    def connect(self) -> "ServerClient":
        """Open the socket (lazy: request methods call this on demand).

        Each attempt is bounded by the policy's ``connect_timeout_s``
        and failures are retried with capped, full-jitter exponential
        backoff.  Without a ``deadline_s`` the loop is attempts-bounded
        (``max_attempts``); with one, it keeps retrying until the
        wall-clock budget is spent instead — attempts become unbounded
        and every sleep and dial is clipped to the remaining budget.
        Exhausting either raises a structured
        :class:`~repro.errors.ServeError` with ``code="connect_failed"``
        carrying host/port/attempts/``elapsed_s`` instead of blocking
        indefinitely on a dead host.
        """
        if self._sock is not None:
            return self
        policy = self.policy
        deadline = policy.deadline()
        last: Exception | None = None
        attempt = 0
        while True:
            if attempt:
                pause = policy.backoff_s(attempt - 1, self._rng)
                remaining = deadline.remaining_s()
                if remaining is not None and pause >= remaining:
                    break  # sleeping would outlive the budget
                time.sleep(pause)
            if deadline.expired:
                break
            attempt += 1
            try:
                self._sock = socket.create_connection(
                    (self.host, self.port),
                    timeout=deadline.cap(policy.connect_timeout_s),
                )
            except OSError as e:
                last = e
                if policy.deadline_s is None and attempt >= policy.max_attempts:
                    break
                continue
            self._sock.settimeout(policy.op_timeout_s)
            self._rfile = self._sock.makefile("rb")
            self._wfile = self._sock.makefile("wb")
            return self
        details: dict[str, Any] = {
            "host": self.host,
            "port": self.port,
            "attempts": attempt,
            "elapsed_s": round(deadline.elapsed_s, 3),
        }
        if policy.deadline_s is not None:
            details["deadline_s"] = policy.deadline_s
        raise ServeError(
            f"could not connect to {self.host}:{self.port} after "
            f"{attempt} attempt(s) ({details['elapsed_s']}s): {last}",
            code="connect_failed",
            **details,
        )

    def close(self) -> None:
        """Close the connection; idempotent."""
        for f in (self._rfile, self._wfile):
            if f is not None:
                try:
                    f.close()
                except OSError:
                    pass
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
        self._sock = self._rfile = self._wfile = None

    def __enter__(self) -> "ServerClient":
        return self.connect()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- request plumbing --------------------------------------------------

    def _send(self, payload: dict[str, Any]) -> None:
        self.connect()
        protocol.write_message(self._wfile, payload)

    def _read(self) -> dict[str, Any]:
        msg = protocol.read_message(self._rfile)
        if msg is None:
            raise ServeError("server closed the connection")
        return msg

    @staticmethod
    def _checked(response: dict[str, Any]) -> dict[str, Any]:
        if response.get("ok"):
            return response
        err = response.get("error") or {}
        raise ServeError(
            err.get("reason", "server reported an error"),
            code=err.get("code", "bad_request"),
            **{k: v for k, v in err.items() if k not in ("code", "reason")},
        )

    def _request(self, payload: dict[str, Any]) -> dict[str, Any]:
        self._send(payload)
        return self._checked(self._read())

    def request(self, op: str, **params: Any) -> dict[str, Any]:
        """One arbitrary-op request/response round trip.

        The escape hatch for protocol extensions — the cluster shard
        agents accept ``cache_export`` / ``cache_import`` beyond the
        base :data:`~repro.serve.protocol.OPS`, and this is how the
        coordinator's replicator reaches them with the same structured
        error handling as the typed methods.
        """
        return self._request({"op": op, **params})

    # -- ops ---------------------------------------------------------------

    def submit(
        self,
        spec: ScenarioSpec | dict,
        priority: int = 0,
        trial_indices: list[int] | None = None,
        tenant: str | None = None,
    ) -> dict[str, Any]:
        """Submit a scenario; returns the admission ack (``job_id`` ...).

        ``trial_indices`` restricts the job to a sub-grid of the spec's
        plan (the cluster sharding primitive); ``tenant`` names the
        quota bucket on coordinators that enforce per-tenant quotas.
        Raises :class:`~repro.errors.ServeError` with
        ``code="queue_full"`` (or ``"quota_exceeded"``) when admission
        rejects the job.
        """
        spec_dict = spec.to_dict() if isinstance(spec, ScenarioSpec) else spec
        payload = {"op": "submit", "spec": spec_dict, "priority": priority}
        if trial_indices is not None:
            payload["trial_indices"] = list(trial_indices)
        if tenant is not None:
            payload["tenant"] = tenant
        return self._request(payload)

    def status(self, job_id: str) -> dict[str, Any]:
        """The job's state/progress snapshot."""
        return self._request({"op": "status", "job_id": job_id})

    def results(self, job_id: str) -> dict[str, Any]:
        """Final rows + report for a ``done``/``partial`` job."""
        return self._request({"op": "results", "job_id": job_id})

    def stream(self, job_id: str) -> Iterator[dict[str, Any]]:
        """Yield row events as trials land; ends after the ``end`` event.

        The generator yields every ``{"event": "row", ...}`` dict and
        finally the ``{"event": "end", "state": ...}`` dict.
        """
        self._send({"op": "stream", "job_id": job_id})
        self._checked(self._read())  # streaming ack
        while True:
            event = self._read()
            yield event
            if event.get("event") == "end":
                return

    def cancel(self, job_id: str) -> dict[str, Any]:
        """Cancel a queued/running job."""
        return self._request({"op": "cancel", "job_id": job_id})

    def ping(self) -> dict[str, Any]:
        """Server liveness + pool/queue statistics."""
        return self._request({"op": "ping"})

    def handshake(self) -> dict[str, Any]:
        """Version-checked ping: both sides verify PROTOCOL_VERSION.

        The request carries this client's
        :data:`~repro.serve.protocol.PROTOCOL_VERSION` so the server
        rejects a skewed peer with a structured ``protocol_mismatch``
        error; the response's version is checked symmetrically here.
        The cluster coordinator handshakes every agent it registers.
        """
        info = self._request(
            {"op": "ping", "protocol": protocol.PROTOCOL_VERSION}
        )
        if info.get("protocol") != protocol.PROTOCOL_VERSION:
            raise ServeError(
                f"server {self.host}:{self.port} speaks protocol "
                f"{info.get('protocol')!r}, this client speaks "
                f"{protocol.PROTOCOL_VERSION}",
                code="protocol_mismatch",
                server=info.get("protocol"),
                client=protocol.PROTOCOL_VERSION,
            )
        return info

    def shutdown(self) -> dict[str, Any]:
        """Ask the server to stop (acknowledged before it unwinds)."""
        response = self._request({"op": "shutdown"})
        self.close()
        return response

    # -- convenience -------------------------------------------------------

    def run(
        self,
        spec: ScenarioSpec | dict,
        priority: int = 0,
        tenant: str | None = None,
    ) -> RunOutcome:
        """Submit, stream every row, then fetch the final results."""
        ack = self.submit(spec, priority=priority, tenant=tenant)
        job_id = ack["job_id"]
        rows: list[dict] = []
        state = "running"
        error = None
        for event in self.stream(job_id):
            if event.get("event") == "row":
                rows.append(
                    {k: event[k] for k in ("index", "cached", "row")}
                )
            else:
                state = event.get("state", "done")
                error = event.get("error")
        report = None
        if state in ("done", "partial"):
            report = self.results(job_id).get("report")
        return RunOutcome(
            job_id=job_id, state=state, rows=rows, report=report, error=error
        )
