"""Client helper for the profiling service.

:class:`ServerClient` wraps one socket connection in typed methods for
every protocol op, raising :class:`~repro.errors.ServeError` (with the
server's structured ``code``/details) on failure responses so callers
can branch on ``queue_full`` vs ``bad_spec`` without parsing prose.

Quickstart::

    from repro.scenarios import load_scenario
    from repro.serve import ServerClient

    with ServerClient(port=7123) as client:
        outcome = client.run(load_scenario("quickstart"))
        for event in outcome.rows:
            print(event["index"], event["row"])
        print(outcome.report["provenance"]["spec_hash"])

:meth:`ServerClient.run` is the submit → stream → results convenience
loop; the individual ops (:meth:`submit`, :meth:`stream`,
:meth:`status`, :meth:`results`, :meth:`cancel`, :meth:`shutdown`)
compose for anything finer-grained.
"""

from __future__ import annotations

import socket
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.errors import ServeError
from repro.scenarios.spec import ScenarioSpec
from repro.serve import protocol


@dataclass
class RunOutcome:
    """Everything one :meth:`ServerClient.run` call produced.

    ``rows`` are the streamed row events in landing order (each with
    ``index``/``cached``/``row``); ``report`` is the server's final
    report dict (provenance/execution/spec/results) for ``done`` jobs,
    ``None`` for ``partial`` ones.
    """

    job_id: str
    state: str
    rows: list[dict] = field(default_factory=list)
    report: dict | None = None
    error: str | None = None


class ServerClient:
    """One connection to a :class:`~repro.serve.ProfilingServer`."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7123,
        timeout: float | None = 60.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock: socket.socket | None = None
        self._rfile = None
        self._wfile = None

    # -- connection --------------------------------------------------------

    def connect(self) -> "ServerClient":
        """Open the socket (lazy: request methods call this on demand)."""
        if self._sock is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
            self._rfile = self._sock.makefile("rb")
            self._wfile = self._sock.makefile("wb")
        return self

    def close(self) -> None:
        """Close the connection; idempotent."""
        for f in (self._rfile, self._wfile):
            if f is not None:
                try:
                    f.close()
                except OSError:
                    pass
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
        self._sock = self._rfile = self._wfile = None

    def __enter__(self) -> "ServerClient":
        return self.connect()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- request plumbing --------------------------------------------------

    def _send(self, payload: dict[str, Any]) -> None:
        self.connect()
        protocol.write_message(self._wfile, payload)

    def _read(self) -> dict[str, Any]:
        msg = protocol.read_message(self._rfile)
        if msg is None:
            raise ServeError("server closed the connection")
        return msg

    @staticmethod
    def _checked(response: dict[str, Any]) -> dict[str, Any]:
        if response.get("ok"):
            return response
        err = response.get("error") or {}
        raise ServeError(
            err.get("reason", "server reported an error"),
            code=err.get("code", "bad_request"),
            **{k: v for k, v in err.items() if k not in ("code", "reason")},
        )

    def _request(self, payload: dict[str, Any]) -> dict[str, Any]:
        self._send(payload)
        return self._checked(self._read())

    # -- ops ---------------------------------------------------------------

    def submit(
        self, spec: ScenarioSpec | dict, priority: int = 0
    ) -> dict[str, Any]:
        """Submit a scenario; returns the admission ack (``job_id`` ...).

        Raises :class:`~repro.errors.ServeError` with
        ``code="queue_full"`` when admission rejects the job.
        """
        spec_dict = spec.to_dict() if isinstance(spec, ScenarioSpec) else spec
        return self._request(
            {"op": "submit", "spec": spec_dict, "priority": priority}
        )

    def status(self, job_id: str) -> dict[str, Any]:
        """The job's state/progress snapshot."""
        return self._request({"op": "status", "job_id": job_id})

    def results(self, job_id: str) -> dict[str, Any]:
        """Final rows + report for a ``done``/``partial`` job."""
        return self._request({"op": "results", "job_id": job_id})

    def stream(self, job_id: str) -> Iterator[dict[str, Any]]:
        """Yield row events as trials land; ends after the ``end`` event.

        The generator yields every ``{"event": "row", ...}`` dict and
        finally the ``{"event": "end", "state": ...}`` dict.
        """
        self._send({"op": "stream", "job_id": job_id})
        self._checked(self._read())  # streaming ack
        while True:
            event = self._read()
            yield event
            if event.get("event") == "end":
                return

    def cancel(self, job_id: str) -> dict[str, Any]:
        """Cancel a queued/running job."""
        return self._request({"op": "cancel", "job_id": job_id})

    def ping(self) -> dict[str, Any]:
        """Server liveness + pool/queue statistics."""
        return self._request({"op": "ping"})

    def shutdown(self) -> dict[str, Any]:
        """Ask the server to stop (acknowledged before it unwinds)."""
        response = self._request({"op": "shutdown"})
        self.close()
        return response

    # -- convenience -------------------------------------------------------

    def run(
        self, spec: ScenarioSpec | dict, priority: int = 0
    ) -> RunOutcome:
        """Submit, stream every row, then fetch the final results."""
        ack = self.submit(spec, priority=priority)
        job_id = ack["job_id"]
        rows: list[dict] = []
        state = "running"
        error = None
        for event in self.stream(job_id):
            if event.get("event") == "row":
                rows.append(
                    {k: event[k] for k in ("index", "cached", "row")}
                )
            else:
                state = event.get("state", "done")
                error = event.get("error")
        report = None
        if state in ("done", "partial"):
            report = self.results(job_id).get("report")
        return RunOutcome(
            job_id=job_id, state=state, rows=rows, report=report, error=error
        )
