"""Process/thread runtime: the simulated application container."""

from repro.runtime.openmp import chunk_of, interleaved_chunks, static_chunks
from repro.runtime.process import ContainerSpec, SimProcess
from repro.runtime.thread import SimThread, ThreadTeam

__all__ = [
    "ContainerSpec",
    "SimProcess",
    "SimThread",
    "ThreadTeam",
    "chunk_of",
    "interleaved_chunks",
    "static_chunks",
]
