"""Simulated processes: address space + threads + perf + environment.

A :class:`SimProcess` stands in for the profiled application process:
it owns a :class:`~repro.machine.address_space.VirtualAddressSpace`
(with an optional cgroup-style memory cap, as in the paper's Docker
runs), a thread team, the per-process perf syscall surface, and the
environment block NMO's preload-style configuration reads (Table I).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import MachineError
from repro.kernel.perf_event import PerfSubsystem
from repro.machine.address_space import VirtualAddressSpace
from repro.machine.spec import MachineSpec
from repro.runtime.thread import ThreadTeam


@dataclass
class SimProcess:
    """One profiled application process on the simulated machine."""

    machine: MachineSpec
    n_threads: int = 1
    mem_limit: int | None = None
    pid: int = 1000
    env: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n_threads <= 0:
            raise MachineError("process needs at least one thread")
        if self.n_threads > self.machine.n_cores:
            raise MachineError(
                f"{self.n_threads} threads exceed {self.machine.n_cores} cores"
            )
        self.address_space = VirtualAddressSpace(
            self.machine, mem_limit=self.mem_limit
        )
        self.team = ThreadTeam(self.n_threads)
        self.perf = PerfSubsystem(self.machine)

    # -- time ----------------------------------------------------------------------

    @property
    def wall_cycles(self) -> float:
        """Process wall-clock in core cycles (slowest thread)."""
        return self.team.max_cycles

    @property
    def wall_seconds(self) -> float:
        return self.wall_cycles / self.machine.frequency_hz

    # -- memory -------------------------------------------------------------------

    @property
    def rss_bytes(self) -> int:
        return self.address_space.rss_bytes

    def getenv(self, key: str, default: str | None = None) -> str | None:
        return self.env.get(key, default)


@dataclass
class ContainerSpec:
    """Docker/cgroup resource limits for CloudSuite-style runs.

    The paper runs CloudSuite in containers with "32 cores and 8 GiB
    memory per core"; :meth:`make_process` applies both limits.
    """

    cores: int = 32
    mem_per_core: int = 8 * 1024**3

    def __post_init__(self) -> None:
        if self.cores <= 0 or self.mem_per_core <= 0:
            raise MachineError("container limits must be positive")

    @property
    def mem_limit(self) -> int:
        return self.cores * self.mem_per_core

    def make_process(
        self, machine: MachineSpec, n_threads: int | None = None,
        env: dict[str, str] | None = None,
    ) -> SimProcess:
        threads = n_threads if n_threads is not None else self.cores
        if threads > self.cores:
            raise MachineError(
                f"{threads} threads exceed container cpu limit {self.cores}"
            )
        return SimProcess(
            machine=machine,
            n_threads=threads,
            mem_limit=self.mem_limit,
            env=dict(env or {}),
        )
