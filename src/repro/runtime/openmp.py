"""OpenMP-style loop partitioning.

The paper's benchmarks are OpenMP codes with default static scheduling:
``#pragma omp parallel for`` splits the iteration space into one
contiguous chunk per thread.  That contiguity is what produces the
"regular incremental small line segments" in the STREAM address scatter
(paper Fig. 4) — each thread walks its own slice of the arrays.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError


def static_chunks(n_iters: int, n_threads: int) -> list[tuple[int, int]]:
    """OpenMP static schedule: ``[start, stop)`` per thread.

    Matches ``schedule(static)`` semantics: chunks differ by at most one
    iteration and earlier threads get the larger chunks.
    """
    if n_iters < 0:
        raise WorkloadError("n_iters must be >= 0")
    if n_threads <= 0:
        raise WorkloadError("n_threads must be >= 1")
    base = n_iters // n_threads
    rem = n_iters % n_threads
    out: list[tuple[int, int]] = []
    start = 0
    for t in range(n_threads):
        size = base + (1 if t < rem else 0)
        out.append((start, start + size))
        start += size
    return out


def chunk_of(n_iters: int, n_threads: int, thread: int) -> tuple[int, int]:
    """The static chunk assigned to one thread (no list allocation)."""
    if not 0 <= thread < n_threads:
        raise WorkloadError(f"thread {thread} outside team of {n_threads}")
    base = n_iters // n_threads
    rem = n_iters % n_threads
    if thread < rem:
        start = thread * (base + 1)
        return start, start + base + 1
    start = rem * (base + 1) + (thread - rem) * base
    return start, start + base


def interleaved_chunks(n_iters: int, n_threads: int, chunk: int = 1) -> list[np.ndarray]:
    """``schedule(static, chunk)`` round-robin partition (index arrays).

    Used by tests to check that region profiling distinguishes contiguous
    from interleaved thread access patterns.
    """
    if chunk <= 0:
        raise WorkloadError("chunk must be >= 1")
    if n_iters < 0 or n_threads <= 0:
        raise WorkloadError("bad iteration/thread counts")
    idx = np.arange(n_iters)
    block = idx // chunk
    return [idx[block % n_threads == t] for t in range(n_threads)]
