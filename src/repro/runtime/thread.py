"""Simulated threads.

A :class:`SimThread` is the unit NMO profiles per-core: it is pinned to a
core (OpenMP-style static binding, as the paper's experiments use), has a
private cycle clock, and accumulates op counts that feed the PMU.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import MachineError


@dataclass
class SimThread:
    """One application thread pinned to one core."""

    tid: int
    core: int
    cycles: float = 0.0
    ops_retired: int = 0
    mem_ops_retired: int = 0
    flops_retired: int = 0
    #: extra cycles injected by profiling (interrupts, consumer work)
    overhead_cycles: float = 0.0

    def __post_init__(self) -> None:
        if self.tid < 0 or self.core < 0:
            raise MachineError("tid and core must be non-negative")

    def advance(self, cycles: float) -> None:
        if cycles < 0:
            raise MachineError("thread clock cannot move backwards")
        self.cycles += cycles

    def charge_overhead(self, cycles: float) -> None:
        """Record profiling-induced cycles (also advances the clock)."""
        if cycles < 0:
            raise MachineError("overhead must be >= 0")
        self.overhead_cycles += cycles
        self.cycles += cycles

    def retire(self, n_ops: int, n_mem: int = 0, n_flops: int = 0) -> None:
        if min(n_ops, n_mem, n_flops) < 0 or n_mem + n_flops > n_ops:
            raise MachineError("inconsistent retire counts")
        self.ops_retired += n_ops
        self.mem_ops_retired += n_mem
        self.flops_retired += n_flops


@dataclass
class ThreadTeam:
    """An OpenMP-style team of threads pinned to consecutive cores."""

    n_threads: int
    threads: list[SimThread] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.n_threads <= 0:
            raise MachineError("team needs at least one thread")
        if not self.threads:
            self.threads = [SimThread(tid=i, core=i) for i in range(self.n_threads)]
        if len(self.threads) != self.n_threads:
            raise MachineError("thread list does not match n_threads")

    def __iter__(self):
        return iter(self.threads)

    def __getitem__(self, i: int) -> SimThread:
        return self.threads[i]

    @property
    def max_cycles(self) -> float:
        """Team wall-clock: the slowest thread (implicit barrier)."""
        return max(t.cycles for t in self.threads)

    def barrier(self) -> None:
        """Align every thread's clock to the slowest (OpenMP join)."""
        m = self.max_cycles
        for t in self.threads:
            t.cycles = m

    @property
    def total_overhead_cycles(self) -> float:
        return sum(t.overhead_cycles for t in self.threads)

    @property
    def total_ops(self) -> int:
        return sum(t.ops_retired for t in self.threads)

    @property
    def total_mem_ops(self) -> int:
        return sum(t.mem_ops_retired for t in self.threads)

    @property
    def total_flops(self) -> int:
        return sum(t.flops_retired for t in self.threads)
