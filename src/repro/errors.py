"""Exception hierarchy for the repro package.

Every error raised by the simulated kernel / SPE / NMO stack derives from
:class:`ReproError` so callers can catch substrate failures without
swallowing programming errors.  Errors that mirror a POSIX failure mode of
the real interfaces (``perf_event_open``, ``mmap``) carry an ``errno``-like
:attr:`code` so tests can assert on the specific failure.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro stack."""


class MachineError(ReproError):
    """Invalid machine configuration or impossible hardware request."""


class AddressSpaceError(ReproError):
    """Virtual-memory operation failed (overlap, unmapped access, ...)."""


class SegmentationFault(AddressSpaceError):
    """Access to an address with no backing mapping."""

    def __init__(self, addr: int, message: str | None = None) -> None:
        self.addr = addr
        super().__init__(message or f"segmentation fault at 0x{addr:x}")


class OutOfMemoryError(AddressSpaceError):
    """Allocation exceeded the process memory cap (cgroup-style limit)."""


class PerfError(ReproError):
    """Failure in the simulated perf_event subsystem."""

    def __init__(self, message: str, code: str = "EINVAL") -> None:
        self.code = code
        super().__init__(f"[{code}] {message}")


class BufferError_(PerfError):
    """Ring/aux buffer misuse (bad size, double mmap, read past head)."""

    def __init__(self, message: str, code: str = "EINVAL") -> None:
        super().__init__(message, code)


class SpeError(ReproError):
    """ARM SPE driver/configuration failure."""


class PacketDecodeError(SpeError):
    """A sample packet failed structural validation.

    NMO's decode loop *skips* such packets (per the paper, Section IV-A);
    this exception is raised only by the strict decoding entry points used
    in tests.
    """


class WorkloadError(ReproError):
    """Workload construction or parameterisation error."""


class NmoError(ReproError):
    """NMO profiler misuse (bad env configuration, stop without start...)."""


class ColocationError(ReproError):
    """Invalid co-location request (no runners, core oversubscription...)."""


class ScenarioError(ReproError):
    """Invalid declarative scenario (unknown kind, bad axis, bad JSON...)."""


class AnalysisError(ReproError):
    """Post-processing request the profile data cannot answer."""


class ServeError(ReproError):
    """Profiling-service failure (bad request, unknown job, refused op).

    Carries the structured ``code``/``details`` the wire protocol
    reports, so callers can branch on *why* without parsing prose.
    """

    def __init__(
        self, message: str, code: str = "bad_request", **details
    ) -> None:
        self.code = code
        self.details = dict(details)
        super().__init__(message)


class QueueFullError(ServeError):
    """Admission control rejected a job: the queue is at capacity."""

    def __init__(self, message: str, **details) -> None:
        super().__init__(message, code="queue_full", **details)


class QuotaExceededError(ServeError):
    """Admission control rejected a job: the tenant's quota is spent.

    Carries ``tenant``, ``requested``, ``available`` and (when the
    request could ever succeed) ``retry_after_s`` in :attr:`details`.
    """

    def __init__(self, message: str, **details) -> None:
        super().__init__(message, code="quota_exceeded", **details)


class ClusterError(ServeError):
    """Multi-host profiling-cluster failure (no live agents, a shard
    that cannot be reached, replication of a missing cache entry)."""


class DeadlineExceededError(ServeError):
    """An operation's overall wall-clock budget ran out.

    Raised by :class:`~repro.serve.RetryPolicy`-governed operations
    when the ``deadline_s`` budget is spent before the op succeeds —
    distinct from attempts-exhausted failures, whose own error (e.g.
    ``connect_failed``) propagates instead.  Carries ``budget_s`` and
    ``elapsed_s`` in :attr:`details`.
    """

    def __init__(self, message: str, **details) -> None:
        super().__init__(message, code="deadline_exceeded", **details)


class AnnotationError(NmoError):
    """Misnested or unknown profiling annotations."""


class SubstrateError(ReproError):
    """Columnar result-substrate failure (corrupt payload, unknown
    format version, unencodable object).

    The transport and cache layers treat this as "payload is not
    columnar" and fall back to pickle rather than failing the trial.
    """
