"""Trace-driven core execution.

:class:`Core` walks an :class:`~repro.cpu.ops.OpChunk` through the exact
memory hierarchy, producing per-op memory levels, per-op retire
timestamps, and aggregate cycle counts.  This is the *small-scale* engine
behind unit tests, examples, and the high-resolution tracing mode; the
large closed-form runs use the statistical path in
:mod:`repro.workloads.base` instead.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MachineError
from repro.cpu.ops import OpChunk, OpKind
from repro.cpu.pipeline import PipelineModel
from repro.machine.hierarchy import MemLevel, MemoryHierarchy


@dataclass
class ExecutionResult:
    """Outcome of running one chunk on a core.

    ``retire_cycles`` are absolute core-clock times at which each op
    retired; the SPE sampler uses them as sample timestamps.
    """

    chunk: OpChunk
    levels: np.ndarray          # uint8 MemLevel per op (0 for non-mem)
    latencies: np.ndarray       # float64 pipeline latency per op
    retire_cycles: np.ndarray   # float64 absolute retire time per op
    total_cycles: float

    @property
    def n_ops(self) -> int:
        return len(self.chunk)

    @property
    def n_mem(self) -> int:
        return int(self.chunk.is_mem().sum())

    def level_histogram(self) -> dict[str, int]:
        mem_mask = self.chunk.is_mem()
        lv = self.levels[mem_mask]
        return {m.pretty: int((lv == int(m)).sum()) for m in MemLevel}


class Core:
    """One simulated core executing op chunks in order.

    Parameters
    ----------
    core_id:
        Index into the hierarchy's private cache arrays.
    hierarchy:
        Shared :class:`MemoryHierarchy` (SLC/DRAM shared across cores).
    pipeline:
        Timing model.
    start_cycle:
        Initial value of the core-local clock.
    """

    def __init__(
        self,
        core_id: int,
        hierarchy: MemoryHierarchy,
        pipeline: PipelineModel,
        start_cycle: float = 0.0,
    ) -> None:
        if not 0 <= core_id < hierarchy.n_cores:
            raise MachineError(f"core_id {core_id} out of range")
        self.core_id = core_id
        self.hierarchy = hierarchy
        self.pipeline = pipeline
        self.cycle = start_cycle
        self.retired_ops = 0

    def execute(
        self, chunk: OpChunk, rng: np.random.Generator | None = None
    ) -> ExecutionResult:
        """Run a chunk, advancing the core clock.

        Issue is in-order at ``dispatch_width`` ops/cycle; each op retires
        at issue time + its pipeline latency.  The core clock advances to
        the last retire time (memory latency overlaps within the window).
        """
        n = len(chunk)
        levels = np.zeros(n, dtype=np.uint8)
        is_mem = chunk.is_mem()
        if is_mem.any():
            mem_levels = self.hierarchy.access_many(
                self.core_id, chunk.addrs[is_mem]
            )
            levels[is_mem] = mem_levels
        latencies = self.pipeline.op_latencies(chunk.kinds, levels, rng=rng)
        issue = self.cycle + np.arange(n, dtype=np.float64) / self.pipeline.dispatch_width
        retire = issue + latencies
        total_end = float(retire.max()) if n else self.cycle
        result = ExecutionResult(
            chunk=chunk,
            levels=levels,
            latencies=latencies,
            retire_cycles=retire,
            total_cycles=total_end - self.cycle,
        )
        self.cycle = total_end
        self.retired_ops += n
        return result

    def idle(self, cycles: float) -> None:
        """Advance the clock without retiring ops (barrier waits, IRQs)."""
        if cycles < 0:
            raise MachineError("cannot idle a negative duration")
        self.cycle += cycles
