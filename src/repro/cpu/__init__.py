"""Simulated CPU: op streams, clocks, pipeline timing, trace-driven cores."""

from repro.cpu.clock import (
    DEFAULT_CNTFRQ_HZ,
    GenericTimer,
    VirtualClock,
    calc_mult_shift,
    ticks_to_ns,
)
from repro.cpu.core import Core, ExecutionResult
from repro.cpu.ops import MEM_KINDS, OpChunk, OpKind, interleave
from repro.cpu.pipeline import PipelineModel, loaded_dram_scale

__all__ = [
    "DEFAULT_CNTFRQ_HZ",
    "Core",
    "ExecutionResult",
    "GenericTimer",
    "MEM_KINDS",
    "OpChunk",
    "OpKind",
    "PipelineModel",
    "VirtualClock",
    "calc_mult_shift",
    "interleave",
    "loaded_dram_scale",
    "ticks_to_ns",
]
