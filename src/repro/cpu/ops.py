"""Vectorised operation streams.

A simulated thread's work is a stream of decoded operations — exactly the
population SPE samples from ("the sampling interval counter ... is
decremented after each operation is decoded", paper §II-A).  Streams are
held as structure-of-arrays chunks so every downstream consumer (cache
simulator, SPE sampler, PMU counters) operates on NumPy vectors.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError


class OpKind(enum.IntEnum):
    """Decoded operation categories relevant to memory-centric profiling."""

    OTHER = 0   #: integer ALU / address arithmetic / control glue
    LOAD = 1
    STORE = 2
    BRANCH = 3  #: sampled by SPE in hardware but excluded by NMO (§IV-A)
    FLOP = 4    #: floating-point op, counted for arithmetic intensity


#: Kinds that constitute the ``mem_access`` PMU event (loads + stores).
MEM_KINDS = (OpKind.LOAD, OpKind.STORE)


@dataclass
class OpChunk:
    """A contiguous slice of one thread's operation stream.

    Attributes
    ----------
    kinds:
        uint8 array of :class:`OpKind` values.
    addrs:
        uint64 virtual addresses; meaningful only where the kind is a
        load or store (0 elsewhere).
    start_index:
        Global index of the first op within the thread's stream, so
        sampling positions remain stable across chunk boundaries.
    """

    kinds: np.ndarray
    addrs: np.ndarray
    start_index: int = 0

    def __post_init__(self) -> None:
        self.kinds = np.asarray(self.kinds, dtype=np.uint8)
        self.addrs = np.asarray(self.addrs, dtype=np.uint64)
        if self.kinds.shape != self.addrs.shape:
            raise WorkloadError(
                f"kinds/addrs shape mismatch: {self.kinds.shape} vs {self.addrs.shape}"
            )
        if self.kinds.ndim != 1:
            raise WorkloadError("op chunks must be one-dimensional")
        if self.start_index < 0:
            raise WorkloadError("start_index must be >= 0")

    def __len__(self) -> int:
        return int(self.kinds.shape[0])

    @property
    def end_index(self) -> int:
        return self.start_index + len(self)

    def is_mem(self) -> np.ndarray:
        """Boolean mask of memory operations (loads or stores)."""
        return (self.kinds == OpKind.LOAD) | (self.kinds == OpKind.STORE)

    def mem_addrs(self) -> np.ndarray:
        """Addresses of the memory operations only."""
        return self.addrs[self.is_mem()]

    def count(self, kind: OpKind) -> int:
        return int((self.kinds == kind).sum())

    def counts(self) -> dict[OpKind, int]:
        """Histogram over op kinds."""
        binc = np.bincount(self.kinds, minlength=len(OpKind))
        return {k: int(binc[int(k)]) for k in OpKind}

    def slice(self, lo: int, hi: int) -> "OpChunk":
        """Sub-chunk covering local indices [lo, hi)."""
        if not 0 <= lo <= hi <= len(self):
            raise WorkloadError(f"bad slice [{lo}, {hi}) of chunk len {len(self)}")
        return OpChunk(
            kinds=self.kinds[lo:hi],
            addrs=self.addrs[lo:hi],
            start_index=self.start_index + lo,
        )

    @staticmethod
    def concat(chunks: list["OpChunk"]) -> "OpChunk":
        """Concatenate consecutive chunks (indices must be contiguous)."""
        if not chunks:
            raise WorkloadError("cannot concat zero chunks")
        for a, b in zip(chunks, chunks[1:]):
            if a.end_index != b.start_index:
                raise WorkloadError(
                    f"non-contiguous chunks: {a.end_index} != {b.start_index}"
                )
        return OpChunk(
            kinds=np.concatenate([c.kinds for c in chunks]),
            addrs=np.concatenate([c.addrs for c in chunks]),
            start_index=chunks[0].start_index,
        )


def interleave(
    mem_addrs: np.ndarray,
    is_store: np.ndarray | bool,
    ops_between: int,
    flop_share: float = 0.0,
    start_index: int = 0,
    rng: np.random.Generator | None = None,
) -> OpChunk:
    """Build an op chunk from memory accesses plus filler compute ops.

    Workload kernels naturally produce their *memory* access sequences;
    this helper expands them into full instruction streams by inserting
    ``ops_between`` non-memory ops after each access, a ``flop_share`` of
    which are floating-point (for arithmetic-intensity profiling).

    Parameters
    ----------
    mem_addrs:
        uint64 addresses of the memory accesses, in program order.
    is_store:
        Per-access store mask, or a scalar bool for homogeneous streams.
    ops_between:
        Number of OTHER/FLOP ops inserted after each memory access.
    flop_share:
        Fraction of the filler ops that are FLOPs (deterministic pattern
        unless an ``rng`` is supplied).
    """
    if ops_between < 0:
        raise WorkloadError("ops_between must be >= 0")
    if not 0.0 <= flop_share <= 1.0:
        raise WorkloadError("flop_share must be in [0, 1]")
    mem_addrs = np.asarray(mem_addrs, dtype=np.uint64)
    n_mem = mem_addrs.shape[0]
    store_mask = np.broadcast_to(np.asarray(is_store, dtype=bool), (n_mem,))

    group = 1 + ops_between
    total = n_mem * group
    kinds = np.full(total, OpKind.OTHER, dtype=np.uint8)
    addrs = np.zeros(total, dtype=np.uint64)

    mem_pos = np.arange(n_mem) * group
    kinds[mem_pos] = np.where(store_mask, OpKind.STORE, OpKind.LOAD).astype(np.uint8)
    addrs[mem_pos] = mem_addrs

    if ops_between and flop_share > 0.0:
        filler = np.ones(total, dtype=bool)
        filler[mem_pos] = False
        filler_idx = np.nonzero(filler)[0]
        n_flops = int(round(flop_share * filler_idx.size))
        if n_flops:
            if rng is not None:
                chosen = rng.choice(filler_idx, size=n_flops, replace=False)
            else:
                # deterministic spread: every k-th filler op is a FLOP
                step = max(1, filler_idx.size // n_flops)
                chosen = filler_idx[::step][:n_flops]
            kinds[chosen] = OpKind.FLOP

    return OpChunk(kinds=kinds, addrs=addrs, start_index=start_index)
