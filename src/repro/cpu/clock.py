"""Clocks and timestamp conversion.

Two time bases coexist on the paper's platform, and their mismatch is an
explicit implementation detail of NMO (§IV-A):

* the **core clock** (3.0 GHz on the Altra Max), in which all execution
  and overhead costs are accounted, and
* the **ARM generic timer** (``CNTVCT_EL0``-style counter, tens of MHz),
  which stamps SPE sample records.

perf exposes ``time_zero`` / ``time_shift`` / ``time_mult`` in the ring
buffer metadata page so user space can convert raw counter values to perf
nanoseconds:

    ns = time_zero + (counter * time_mult) >> time_shift

:func:`calc_mult_shift` derives mult/shift exactly as the kernel's
``clocks_calc_mult_shift`` does; :class:`GenericTimer` implements the
counter; NMO's ``timescale`` module applies the conversion on decode.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MachineError

#: Frequency of the ARM generic timer on the simulated platform.  Ampere
#: parts run the system counter at 25 MHz.
DEFAULT_CNTFRQ_HZ = 25_000_000

NSEC_PER_SEC = 1_000_000_000


def calc_mult_shift(from_hz: float, maxsec: int = 600) -> tuple[int, int]:
    """Compute (mult, shift) such that ``ns ~= (ticks * mult) >> shift``.

    Mirrors the kernel's ``clocks_calc_mult_shift``: choose the largest
    shift for which ``maxsec`` seconds of ticks cannot overflow 64 bits,
    then round the multiplier to nearest.
    """
    if from_hz <= 0:
        raise MachineError("timer frequency must be positive")
    # largest shift where (maxsec * from_hz * mult) fits in 64 bits
    sftacc = 32
    tmp = (int(maxsec * from_hz)) >> 32
    while tmp:
        tmp >>= 1
        sftacc -= 1
    hz = int(from_hz)
    for sft in range(32, 0, -1):
        # rounded division, as the kernel does, halves the conversion bias
        mult = ((NSEC_PER_SEC << sft) + hz // 2) // hz
        if (mult >> sftacc) == 0:
            return mult, sft
    raise MachineError("could not derive mult/shift")  # pragma: no cover


def ticks_to_ns(ticks: np.ndarray | int, mult: int, shift: int,
                zero: int = 0) -> np.ndarray | int:
    """Apply the perf conversion ``zero + (ticks * mult) >> shift``.

    The kernel computes the product in 128 bits; here it is split into
    32-bit halves so the whole batch runs as uint64 NumPy arithmetic::

        ticks*mult >> shift == (hi*mult) << (32-shift) + (lo*mult) >> shift

    which is *exact* for ``mult < 2**32`` and ``shift <= 32`` — both
    guaranteed by :func:`calc_mult_shift` (``hi*2**32`` has 32 zero low
    bits, so shifting the halves separately loses nothing).  Parameters
    outside that envelope fall back to :func:`ticks_to_ns_reference`,
    which is also the parity pin for the fast path.
    """
    if np.isscalar(ticks):
        return zero + ((int(ticks) * mult) >> shift)
    if not (0 <= mult < 1 << 32 and 1 <= shift <= 32):
        return ticks_to_ns_reference(ticks, mult, shift, zero)
    arr = np.asarray(ticks, dtype=np.uint64)
    m = np.uint64(mult)
    hi = (arr >> np.uint64(32)) * m
    lo = (arr & np.uint64(0xFFFFFFFF)) * m
    return (
        (hi << np.uint64(32 - shift)) + (lo >> np.uint64(shift))
        + np.uint64(zero)
    )


def ticks_to_ns_reference(ticks: np.ndarray | int, mult: int, shift: int,
                          zero: int = 0) -> np.ndarray | int:
    """Retained elementwise big-int conversion (the pre-vectorised path).

    Python integers reproduce the kernel's 128-bit product for *any*
    mult/shift; :func:`ticks_to_ns` must match this exactly wherever its
    fast path engages (pinned by ``tests/spe/test_stream_decode.py``).
    """
    if np.isscalar(ticks):
        return zero + ((int(ticks) * mult) >> shift)
    arr = np.asarray(ticks)
    out = np.empty(arr.shape, dtype=np.uint64)
    flat_in = arr.reshape(-1)
    flat_out = out.reshape(-1)
    for i in range(flat_in.shape[0]):
        flat_out[i] = zero + ((int(flat_in[i]) * mult) >> shift)
    return out


@dataclass
class GenericTimer:
    """The ARM generic timer: converts core cycles to counter ticks."""

    core_hz: float
    cnt_hz: float = DEFAULT_CNTFRQ_HZ

    def __post_init__(self) -> None:
        if self.core_hz <= 0 or self.cnt_hz <= 0:
            raise MachineError("frequencies must be positive")

    def cycles_to_ticks(self, cycles: np.ndarray | float) -> np.ndarray:
        """Counter value at a given core-cycle time (vectorised, floor)."""
        c = np.asarray(cycles, dtype=np.float64)
        return np.floor(c * (self.cnt_hz / self.core_hz)).astype(np.uint64)

    def ticks_to_cycles(self, ticks: np.ndarray | float) -> np.ndarray:
        t = np.asarray(ticks, dtype=np.float64)
        return t * (self.core_hz / self.cnt_hz)

    def ticks_to_seconds(self, ticks: np.ndarray | float) -> np.ndarray:
        return np.asarray(ticks, dtype=np.float64) / self.cnt_hz

    def seconds_to_ticks(self, seconds: np.ndarray | float) -> np.ndarray:
        s = np.asarray(seconds, dtype=np.float64)
        return np.floor(s * self.cnt_hz).astype(np.uint64)


class VirtualClock:
    """Monotonic per-run clock in core cycles with ns readout.

    The simulated kernel and NMO read this clock instead of wall time;
    "time overhead" experiments compare two VirtualClock totals.
    """

    def __init__(self, core_hz: float) -> None:
        if core_hz <= 0:
            raise MachineError("core frequency must be positive")
        self.core_hz = core_hz
        self._cycles = 0.0

    @property
    def cycles(self) -> float:
        return self._cycles

    @property
    def seconds(self) -> float:
        return self._cycles / self.core_hz

    @property
    def nanoseconds(self) -> float:
        return self.seconds * NSEC_PER_SEC

    def advance_cycles(self, cycles: float) -> None:
        if cycles < 0:
            raise MachineError("clock cannot move backwards")
        self._cycles += cycles

    def advance_seconds(self, seconds: float) -> None:
        if seconds < 0:
            raise MachineError("clock cannot move backwards")
        self._cycles += seconds * self.core_hz
