"""Per-operation pipeline timing model.

Two consumers need per-op latencies:

* the **core timing model** — aggregate cycles for a chunk of ops, with a
  memory-level-parallelism (MLP) overlap factor so streaming workloads do
  not serialise on DRAM latency;
* the **SPE sampler** — a sampled operation occupies SPE's tracking
  machinery for its full pipeline lifetime; if the sampling interval
  elapses before the tracked op completes, the *next* sample collides and
  is dropped (paper §VII, Fig. 8c).  The collision window is exactly the
  per-op latency this module produces.

Latency = issue cost (by op kind) + data-source latency (by MemLevel)
with small multiplicative jitter for realism.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import MachineError
from repro.machine.hierarchy import MemLevel
from repro.machine.spec import MachineSpec
from repro.cpu.ops import OpKind


@dataclass(frozen=True)
class PipelineModel:
    """Latency and throughput parameters of the simulated core.

    ``dispatch_width`` models the superscalar front end: the core retires
    up to that many ops per cycle when nothing stalls.  ``mlp`` is the
    average number of outstanding misses streaming code sustains, used to
    overlap memory latency in aggregate timing.
    """

    spec: MachineSpec
    dispatch_width: int = 2
    issue_cycles: dict = field(
        default_factory=lambda: {
            OpKind.OTHER: 1,
            OpKind.LOAD: 1,
            OpKind.STORE: 1,
            OpKind.BRANCH: 1,
            OpKind.FLOP: 2,
        }
    )
    #: latency jitter fraction (uniform +-) applied per sampled op
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.dispatch_width <= 0:
            raise MachineError("dispatch_width must be positive")
        if not 0.0 <= self.jitter < 1.0:
            raise MachineError("jitter must be in [0, 1)")

    # -- per-op latencies (SPE tracking window) ---------------------------------

    def level_latency(self, level: MemLevel | int) -> int:
        """Load-to-use latency of a data source, in core cycles.

        DRAM-class levels resolve through the machine's memory-tier
        table (``MachineSpec.tiers``); on a flat machine every tier
        degenerates to the one DRAM channel's latency.
        """
        level = MemLevel(level)
        lut = {
            MemLevel.L1: self.spec.l1d.latency_cycles,
            MemLevel.L2: self.spec.l2.latency_cycles,
            MemLevel.SLC: self.spec.slc.latency_cycles,
        }
        if level in lut:
            return lut[level]
        return self.spec.tier_latency_cycles(level.tier)

    def op_latencies(
        self,
        kinds: np.ndarray,
        levels: np.ndarray | None = None,
        rng: np.random.Generator | None = None,
        dram_scale: float = 1.0,
    ) -> np.ndarray:
        """Total pipeline latency of each op, in cycles (vectorised).

        ``levels`` must be provided for memory ops (same length arrays);
        non-memory ops ignore it.  ``dram_scale`` multiplies the DRAM
        latency to model queueing under bandwidth saturation (the loaded
        latency that drives SPE sample collisions in streaming kernels);
        see :func:`loaded_dram_scale`.
        """
        if dram_scale < 1.0:
            raise MachineError("dram_scale must be >= 1")
        kinds = np.asarray(kinds, dtype=np.uint8)
        issue_lut = np.zeros(256, dtype=np.float64)
        for kind, cost in self.issue_cycles.items():
            issue_lut[int(kind)] = cost
        lat = issue_lut.take(kinds)
        is_mem = (kinds == OpKind.LOAD) | (kinds == OpKind.STORE)
        if is_mem.any():
            if levels is None:
                raise MachineError("levels required when chunk contains memory ops")
            levels = np.asarray(levels, dtype=np.uint8)
            if levels.shape != kinds.shape:
                raise MachineError("levels array must match kinds shape")
            lut = np.zeros(int(MemLevel.DRAM_CXL) + 1, dtype=np.float64)
            for lv in MemLevel:
                lut[int(lv)] = self.level_latency(lv)
            # queueing stretches every DRAM-class tier: loaded latency
            # scales with channel pressure wherever the line lives
            for lv in MemLevel:
                if lv.is_dram_class:
                    lut[int(lv)] *= dram_scale
            lat[is_mem] += lut[levels[is_mem]]
        if rng is not None and self.jitter > 0:
            lat *= rng.uniform(1.0 - self.jitter, 1.0 + self.jitter, size=lat.shape)
        return lat

    # -- aggregate timing --------------------------------------------------------

    def chunk_cycles(
        self,
        n_ops: int,
        n_mem: int,
        mean_mem_latency: float,
        mlp: float = 4.0,
    ) -> float:
        """Cycles to execute ``n_ops`` ops of which ``n_mem`` touch memory.

        Front-end cost is ``n_ops / dispatch_width``; memory stalls add the
        *non-overlapped* share of miss latency: ``n_mem * lat / mlp``.  With
        generous MLP, bandwidth-bound kernels approach front-end limits,
        matching how STREAM behaves on real Neoverse cores.
        """
        if n_ops < 0 or n_mem < 0 or n_mem > n_ops:
            raise MachineError("need 0 <= n_mem <= n_ops")
        if mean_mem_latency < 0 or mlp <= 0:
            raise MachineError("latency must be >= 0 and mlp > 0")
        frontend = n_ops / self.dispatch_width
        stalls = n_mem * mean_mem_latency / mlp
        return frontend + stalls

    def effective_ipc(
        self, n_ops: int, n_mem: int, mean_mem_latency: float, mlp: float = 4.0
    ) -> float:
        """Instructions per cycle implied by :meth:`chunk_cycles`."""
        cyc = self.chunk_cycles(n_ops, n_mem, mean_mem_latency, mlp)
        return n_ops / cyc if cyc > 0 else 0.0


def loaded_dram_scale(
    utilisation: float, factor: float = 1.5, over_factor: float = 0.35
) -> float:
    """DRAM latency multiplier under bandwidth pressure.

    Queueing at the memory controller stretches the effective DRAM
    latency (Mess-style bandwidth-latency curves): quadratically while
    demand stays under the roofline, then linearly in the overload ratio
    once demand exceeds it (requests queue behind an oversubscribed
    channel)::

        scale = 1 + factor * min(u, 1)^2 + over_factor * max(u - 1, 0)

    A saturated STREAM sees several times the unloaded latency, which is
    what pushes the SPE tracking window past the sampling gap at small
    periods and produces the collision curves of paper Fig. 8c; the
    overload term makes collisions *grow with thread count* (Fig. 11).
    Overload is capped at 16x peak demand for sanity.
    """
    if factor < 0 or over_factor < 0:
        raise MachineError("factors must be >= 0")
    u = min(max(utilisation, 0.0), 16.0)
    base = min(u, 1.0)
    return 1.0 + factor * base * base + over_factor * max(u - 1.0, 0.0)
