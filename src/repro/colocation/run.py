"""Run several profiled processes against one shared machine.

This is the multi-tenant entry point the single-workload
:class:`~repro.nmo.profiler.NmoProfiler` cannot express: N simulated
processes — each with its own
:class:`~repro.runtime.process.SimProcess`, SPE sessions, aux buffers,
and :class:`~repro.nmo.profiler.ProfileResult` — co-located on one
:class:`~repro.machine.spec.MachineSpec` and competing for its DRAM
channel.

The run happens in two passes:

1. **schedule** — the workloads' phase timelines are interleaved on a
   :class:`~repro.machine.memory.ContendedChannel`
   (:func:`~repro.colocation.schedule.interleave_schedule`), yielding
   per-phase stretch factors and granted bandwidths;
2. **profile** — each workload's phases are re-timed with its stretch
   (``cpi`` scales, so durations, timestamps, and the temporal
   bandwidth/RSS views all land on the contended timeline; the loaded
   DRAM latency scales too, so SPE sample collisions grow under
   contention exactly as they do when a single workload saturates the
   channel by itself), then profiled by its own ``NmoProfiler``.

A single runner goes through the same machinery with every stretch
exactly 1.0, so solo co-location is bit-identical to a plain
``NmoProfiler`` run — the regression tests pin this.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.colocation.schedule import (
    DemandPhase,
    PhaseWindow,
    demand_profile,
    interleave_schedule,
)
from repro.errors import ColocationError
from repro.machine.memory import ContendedChannel
from repro.machine.spec import MachineSpec, ampere_altra_max
from repro.nmo.env import NmoMode, NmoSettings
from repro.nmo.profiler import NmoProfiler, ProfileResult
from repro.workloads.base import Workload
from repro.workloads.registry import make_workload

#: cap on the contention-scaled loaded DRAM latency multiplier: queueing
#: delay grows with the grant cut, but not without bound
LATENCY_STRETCH_CAP = 4.0

#: multiplier separating per-runner seed streams (NmoProfiler folds the
#: seed into per-core rng seed sequences, so distinct ints suffice)
_SEED_STRIDE = 1_000_003


@dataclass(frozen=True)
class CoRunnerSpec:
    """One co-located process: a registry workload + its configuration."""

    workload: str
    n_threads: int = 8
    scale: float = 1.0
    kwargs: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n_threads <= 0:
            raise ColocationError("co-runner needs at least one thread")
        if self.scale <= 0:
            raise ColocationError("co-runner scale must be positive")


@dataclass
class CoRunnerResult:
    """One process's outcome on the contended machine."""

    index: int
    workload: str
    n_threads: int
    profile: ProfileResult
    windows: list[PhaseWindow]
    solo_seconds: float      #: baseline wall time running alone
    colo_seconds: float      #: baseline wall time under contention
    slowdown: float          #: colo_seconds / solo_seconds, >= 1
    demand_bps: float        #: time-weighted mean offered demand
    granted_bps: float       #: time-weighted mean granted bandwidth


@dataclass
class CoLocationResult:
    """Everything one multi-tenant run produced."""

    runners: list[CoRunnerResult]
    machine: MachineSpec
    channel: ContendedChannel
    wall_seconds: float      #: when the last process finished

    @property
    def usable_bandwidth(self) -> float:
        return self.channel.usable_bandwidth

    def granted_sum_bps(self) -> float:
        """Mean aggregate granted bandwidth over the whole run.

        Total granted bytes across all runners divided by the wall
        time; the instantaneous aggregate never exceeds the channel's
        usable bandwidth, so neither does this mean (runners that
        finish early only pull it further down).
        """
        if self.wall_seconds <= 0:
            return 0.0
        total_bytes = sum(
            w.granted_bps * w.elapsed_s for r in self.runners for w in r.windows
        )
        return total_bytes / self.wall_seconds


def _mean_rates(windows: list[PhaseWindow]) -> tuple[float, float]:
    """Time-weighted mean (demand, granted) bandwidth over all windows."""
    elapsed = sum(w.elapsed_s for w in windows)
    if elapsed <= 0:
        return 0.0, 0.0
    demand = sum(w.demand_bps * w.elapsed_s for w in windows) / elapsed
    granted = sum(w.granted_bps * w.elapsed_s for w in windows) / elapsed
    return demand, granted


def apply_contention(
    workload: Workload,
    windows: list[PhaseWindow],
    latency_cap: float = LATENCY_STRETCH_CAP,
) -> None:
    """Re-time a workload's phases onto its contended schedule.

    ``cpi`` scales by the phase stretch (slower progress: durations,
    SPE gaps, and the temporal views all follow); the loaded DRAM
    latency scales with it too — queueing delay under contention — but
    is capped so pathological stretches do not produce absurd
    latencies.  Stretch 1.0 leaves the phase bit-identical.
    """
    phases = workload.phases
    if len(phases) != len(windows):
        raise ColocationError(
            f"schedule has {len(windows)} windows for {len(phases)} phases"
        )
    for phase, window in zip(phases, windows):
        s = max(1.0, window.stretch)
        if s == 1.0:
            continue
        phase.cpi *= s
        phase.dram_latency_scale = min(
            phase.dram_latency_scale * s,
            max(phase.dram_latency_scale, latency_cap),
        )


def run_colocation(
    runners: list[CoRunnerSpec],
    machine: MachineSpec | None = None,
    settings: NmoSettings | None = None,
    seed: int = 0,
    channel: ContendedChannel | None = None,
    latency_cap: float = LATENCY_STRETCH_CAP,
) -> CoLocationResult:
    """Profile co-located processes competing for the shared channel.

    Each runner gets its own simulated process, SPE sessions, and
    profile; ``settings`` (shared; defaults to sampling at period
    16384) configures every profiler identically while seeds stay
    per-runner, so homogeneous co-runners still draw distinct samples.
    """
    if not runners:
        raise ColocationError("need at least one co-runner")
    machine = machine or ampere_altra_max()
    total_threads = sum(r.n_threads for r in runners)
    if total_threads > machine.n_cores:
        raise ColocationError(
            f"{total_threads} co-located threads exceed "
            f"{machine.n_cores} cores (each process is pinned)"
        )
    channel = channel or ContendedChannel(machine.dram)
    settings = settings or NmoSettings(
        enable=True, mode=NmoMode.SAMPLING, period=16384
    )

    workloads = [
        make_workload(
            r.workload, machine, n_threads=r.n_threads, scale=r.scale, **r.kwargs
        )
        for r in runners
    ]
    profiles: list[list[DemandPhase]] = [demand_profile(w) for w in workloads]
    schedule = interleave_schedule(profiles, channel)

    results: list[CoRunnerResult] = []
    wall = 0.0
    for i, (spec, workload, windows) in enumerate(
        zip(runners, workloads, schedule)
    ):
        solo_s = workload.baseline_seconds()
        apply_contention(workload, windows, latency_cap=latency_cap)
        colo_s = workload.baseline_seconds()
        profile = NmoProfiler(
            workload, settings, seed=seed * _SEED_STRIDE + i
        ).run()
        demand, granted = _mean_rates(windows)
        end_s = windows[-1].end_s if windows else 0.0
        wall = max(wall, end_s)
        results.append(
            CoRunnerResult(
                index=i,
                workload=spec.workload,
                n_threads=spec.n_threads,
                profile=profile,
                windows=windows,
                solo_seconds=solo_s,
                colo_seconds=colo_s,
                slowdown=colo_s / solo_s if solo_s > 0 else 1.0,
                demand_bps=demand,
                granted_bps=granted,
            )
        )
    return CoLocationResult(
        runners=results, machine=machine, channel=channel, wall_seconds=wall
    )
