"""Fluid interleaving of co-located processes on a shared DRAM channel.

The paper's exhibits run one workload alone; a co-located deployment
runs several processes whose phases overlap in wall-clock time and
compete for the one memory channel.  This module computes that overlap
as a **fluid schedule**: each process is a sequence of
:class:`DemandPhase` entries (solo duration + offered DRAM demand
rate), and between any two phase-completion events the set of active
phases is constant, so the
:class:`~repro.machine.memory.ContendedChannel` grant — and therefore
each process's progress rate — is constant too.  The simulation steps
from event to event, which makes it exact for piecewise-constant
demand and independent of any time-step parameter.

Progress model: a phase whose demand is granted in full runs at solo
speed.  When the grant is cut, only the memory-bound portion of the
phase stretches; the blend is Amdahl-style with the memory-bound
fraction taken from the phase's solo channel utilisation:

    rate = 1 / ((1 - beta) + beta * solo_grant / grant)

so a compute-bound phase (beta ~ 0) is immune to contention and a
saturating phase (beta = 1) stretches by the full grant ratio.  With a
single process every grant equals its solo grant and every rate is
exactly 1.0 — the schedule then reproduces the solo timeline
bit-identically, which ``repro.colocation.run`` relies on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ColocationError
from repro.machine.memory import ContendedChannel

#: relative progress tolerance for phase-completion detection: the event
#: step lands each completing phase within a few ulp of its duration
_REL_TOL = 1e-9


@dataclass(frozen=True)
class DemandPhase:
    """One phase of one process, as the channel sees it."""

    name: str
    duration_s: float   #: solo (uncontended) duration
    demand_bps: float   #: offered DRAM demand rate while running


@dataclass(frozen=True)
class PhaseWindow:
    """Where one phase actually landed on the contended timeline."""

    name: str
    start_s: float
    end_s: float
    solo_s: float        #: what the phase would have taken alone
    stretch: float       #: (end - start) / solo, >= 1
    demand_bps: float    #: offered demand rate
    granted_bps: float   #: time-weighted mean granted bandwidth

    @property
    def elapsed_s(self) -> float:
        return self.end_s - self.start_s


def demand_profile(workload) -> list[DemandPhase]:
    """Extract a workload's (duration, demand-rate) phase sequence."""
    out: list[DemandPhase] = []
    for phase, t0, t1 in workload.phase_spans():
        dur = t1 - t0
        demand = workload.phase_dram_bytes(phase) / dur if dur > 0 else 0.0
        out.append(DemandPhase(name=phase.name, duration_s=dur, demand_bps=demand))
    return out


def _progress_rates(
    channel: ContendedChannel, demands: np.ndarray, grants: np.ndarray
) -> list[float]:
    """Per-stream progress rate relative to solo execution, in (0, 1]."""
    usable = channel.usable_bandwidth
    rates: list[float] = []
    for demand, grant in zip(demands, grants):
        if demand <= 0.0 or grant >= demand:
            # no traffic, or demand granted in full: solo speed exactly
            rates.append(1.0)
            continue
        solo = channel.delivered_bandwidth(float(demand), 1)
        if grant >= solo:
            # the solo roofline already capped this stream harder than
            # contention does; solo speed exactly (bit-identical path)
            rates.append(1.0)
            continue
        beta = min(1.0, demand / usable)
        rates.append(1.0 / ((1.0 - beta) + beta * solo / grant))
    return rates


def interleave_schedule(
    profiles: list[list[DemandPhase]], channel: ContendedChannel
) -> list[list[PhaseWindow]]:
    """Interleave the processes' phases on the shared channel.

    Returns one :class:`PhaseWindow` list per process, aligned with its
    :class:`DemandPhase` list.  Processes start together at t=0 and run
    to individual completion; a process that finishes early stops
    contending, so survivors speed back up.
    """
    n = len(profiles)
    if n == 0:
        raise ColocationError("need at least one process to schedule")
    for i, prof in enumerate(profiles):
        if not prof:
            raise ColocationError(f"process {i} has no phases")

    idx = [0] * n                    # current phase per process
    done_s = [0.0] * n               # solo-seconds of progress in it
    phase_t0 = [0.0] * n             # contended start of it
    grant_integral = [0.0] * n       # integral of granted bw over it
    slowed = [False] * n             # did any segment run below solo speed?
    windows: list[list[PhaseWindow]] = [[] for _ in range(n)]
    wall = 0.0
    max_steps = sum(len(p) for p in profiles) * 4 + 16

    for _ in range(max_steps):
        active = [p for p in range(n) if idx[p] < len(profiles[p])]
        if not active:
            return windows
        demands = np.array(
            [profiles[p][idx[p]].demand_bps for p in active], dtype=np.float64
        )
        grants = channel.apportion(demands)
        rates = _progress_rates(channel, demands, grants)

        dt = min(
            (profiles[p][idx[p]].duration_s - done_s[p]) / rates[j]
            for j, p in enumerate(active)
        )
        dt = max(dt, 0.0)
        wall += dt
        for j, p in enumerate(active):
            done_s[p] += rates[j] * dt
            grant_integral[p] += float(grants[j]) * dt
            if rates[j] != 1.0 and dt > 0.0:
                slowed[p] = True
            phase = profiles[p][idx[p]]
            if done_s[p] < phase.duration_s * (1.0 - _REL_TOL):
                continue
            elapsed = wall - phase_t0[p]
            # an un-slowed phase gets stretch 1.0 *exactly*: the solo
            # calibration must survive the wall-clock float accumulation
            stretch = (
                max(1.0, elapsed / phase.duration_s)
                if slowed[p] and phase.duration_s > 0
                else 1.0
            )
            granted = (
                grant_integral[p] / elapsed if elapsed > 0 else phase.demand_bps
            )
            windows[p].append(
                PhaseWindow(
                    name=phase.name,
                    start_s=phase_t0[p],
                    end_s=wall,
                    solo_s=phase.duration_s,
                    stretch=stretch,
                    demand_bps=phase.demand_bps,
                    granted_bps=granted,
                )
            )
            idx[p] += 1
            done_s[p] = 0.0
            grant_integral[p] = 0.0
            slowed[p] = False
            phase_t0[p] = wall
    raise ColocationError("schedule failed to converge (no progress)")
