"""Multi-tenant co-location: several profiled processes, one machine.

Every exhibit in the paper runs a single workload alone on the Altra
Max; this package models the deployment reality the paper's Fig. 10/11
thread-scaling hints at — **co-located processes competing for the
shared DRAM channel**:

:func:`interleave_schedule` / :func:`demand_profile`
    A fluid, event-stepped interleaving of the processes' phase
    timelines over a :class:`~repro.machine.memory.ContendedChannel`,
    producing per-phase stretch factors and granted bandwidths.
:func:`run_colocation` / :class:`CoRunnerSpec`
    Re-times each workload onto its contended windows and profiles it
    with its own :class:`~repro.nmo.profiler.NmoProfiler` (own
    ``SimProcess``, SPE sessions, aux buffers, ``ProfileResult``).

Quickstart::

    from repro.colocation import CoRunnerSpec, run_colocation

    res = run_colocation([
        CoRunnerSpec("stream", n_threads=8),
        CoRunnerSpec("pagerank", n_threads=8, scale=0.02),
    ])
    for r in res.runners:
        print(f"{r.workload}: {r.slowdown:.2f}x, "
              f"{r.granted_bps / 2**30:.1f} GiB/s granted")
"""

from repro.colocation.run import (
    LATENCY_STRETCH_CAP,
    CoLocationResult,
    CoRunnerResult,
    CoRunnerSpec,
    apply_contention,
    run_colocation,
)
from repro.colocation.schedule import (
    DemandPhase,
    PhaseWindow,
    demand_profile,
    interleave_schedule,
)

__all__ = [
    "LATENCY_STRETCH_CAP",
    "CoLocationResult",
    "CoRunnerResult",
    "CoRunnerSpec",
    "DemandPhase",
    "PhaseWindow",
    "apply_contention",
    "demand_profile",
    "interleave_schedule",
    "run_colocation",
]
