"""Accuracy and overhead metrics (paper §VII, Eq. 1).

The paper quantifies SPE sampling accuracy as the coverage of samples
relative to a ``perf stat`` baseline count of the ``mem_access`` event::

    accuracy = 1 - | mem_counted - samples * period | / mem_counted

and time overhead as the fraction of execution time added by profiling.
This module provides those metrics plus multi-trial aggregation (the
paper repeats every test at least five times and reports mean and
standard deviation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError


def sampling_accuracy(mem_counted: int, samples: int, period: int) -> float:
    """Paper Eq. 1 (clamped to [0, 1])."""
    if mem_counted <= 0:
        raise ReproError("mem_counted must be positive")
    if samples < 0:
        raise ReproError("samples must be >= 0")
    if period <= 0:
        raise ReproError("period must be positive")
    return max(0.0, 1.0 - abs(mem_counted - samples * period) / mem_counted)


def time_overhead(baseline_s: float, profiled_s: float) -> float:
    """Added execution time as a fraction of the baseline."""
    if baseline_s <= 0:
        raise ReproError("baseline duration must be positive")
    if profiled_s < 0:
        raise ReproError("profiled duration must be >= 0")
    return (profiled_s - baseline_s) / baseline_s


def estimated_total_accesses(samples: int, period: int) -> int:
    """The paper's estimator: total accesses ~= samples x period."""
    if samples < 0 or period <= 0:
        raise ReproError("need samples >= 0 and period > 0")
    return samples * period


@dataclass(frozen=True)
class TrialStats:
    """Mean / standard deviation over repeated trials."""

    mean: float
    std: float
    n_trials: int
    minimum: float
    maximum: float


def aggregate_trials(values: list[float] | np.ndarray) -> TrialStats:
    """Summarise repeated measurements (>= 1 trial required)."""
    v = np.asarray(values, dtype=np.float64)
    if v.ndim != 1 or v.size == 0:
        raise ReproError("need a non-empty 1-D list of trial values")
    return TrialStats(
        mean=float(v.mean()),
        std=float(v.std(ddof=1)) if v.size > 1 else 0.0,
        n_trials=int(v.size),
        minimum=float(v.min()),
        maximum=float(v.max()),
    )


def linearity_check(
    periods: np.ndarray, sample_counts: np.ndarray
) -> tuple[float, float]:
    """How well counts follow ``samples ~ N / period`` (paper Fig. 7).

    Fits ``log(samples) = a - b*log(period)`` and returns ``(b, r2)``;
    ideal scaling gives b = 1.  Deviations at small periods reveal
    collision/drop losses, which is exactly what Fig. 7 shows.
    """
    p = np.asarray(periods, dtype=np.float64)
    s = np.asarray(sample_counts, dtype=np.float64)
    if p.shape != s.shape or p.size < 3:
        raise ReproError("need >= 3 matched (period, count) points")
    if (p <= 0).any() or (s <= 0).any():
        raise ReproError("periods and counts must be positive")
    x, y = np.log(p), np.log(s)
    b, a = np.polyfit(x, y, 1)
    yhat = a + b * x
    ss_res = float(((y - yhat) ** 2).sum())
    ss_tot = float(((y - y.mean()) ** 2).sum())
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return -float(b), r2
