"""Per-tier breakdowns of profiled runs (the placement-analysis view).

Given a :class:`~repro.nmo.profiler.ProfileResult` from a tiered
machine, this module renders the question the paper's multi-level
profiling exists to answer: *how much of the run's latency and traffic
does each memory tier carry, and did the placement policy put the hot
pages near the core?*

Sample counts scale to traffic the standard SPE way: at period ``P``
each kept sample stands for ``P`` operations, and each DRAM-class
access moves one cache line, so a tier's estimated traffic is
``samples * P * line_size`` bytes.  Latency is read straight off the
records' ``total_lat`` field (the per-op pipeline latency SPE tracked).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.plotting import table
from repro.errors import AnalysisError
from repro.machine.hierarchy import MemLevel, tier_level
from repro.machine.spec import GiB, MachineSpec


@dataclass(frozen=True)
class TierUsage:
    """One tier's share of a profiled run."""

    tier: int                 #: tier index (0 = near/local)
    name: str                 #: tier label from the machine spec
    level: MemLevel           #: SPE memory level the tier reports
    samples: int              #: DRAM-class samples serviced here
    sample_share: float       #: fraction of all DRAM-class samples
    mean_latency_cycles: float  #: mean sampled total latency
    est_bytes: float          #: samples * period * line_size
    est_bandwidth_gibs: float  #: est_bytes / profiled wall time
    page_share: float         #: fraction of mapped pages placed here


def tiering_breakdown(
    result,
    machine: MachineSpec,
    placement=None,
) -> list[TierUsage]:
    """Per-tier usage rows for one profiled run on a tiered machine.

    ``placement`` (a :class:`~repro.machine.tiers.PagePlacement`)
    supplies each tier's page share when given; without it the page
    column reads 0.  Tiers with no samples still get a row, so sweeps
    render rectangular tables.
    """
    if machine.tiers is None:
        raise AnalysisError(
            "tiering_breakdown needs a tiered machine (MachineSpec.tiers); "
            "use a tiered preset such as tiered_altra_max"
        )
    levels = np.asarray(result.batch.level)
    lats = np.asarray(result.batch.total_lat, dtype=np.float64)
    dram_class = levels >= np.uint8(MemLevel.DRAM)
    total_dram = int(dram_class.sum())
    period = max(int(result.settings.period), 1)
    duration_s = result.profiled_cycles / machine.frequency_hz
    page_shares = (
        placement.fractions() if placement is not None
        else np.zeros(len(machine.tiers))
    )

    rows: list[TierUsage] = []
    for i, tier in enumerate(machine.tiers):
        level = tier_level(i)
        mask = levels == np.uint8(level)
        n = int(mask.sum())
        est_bytes = float(n * period * machine.line_size)
        rows.append(
            TierUsage(
                tier=i,
                name=tier.name,
                level=level,
                samples=n,
                sample_share=n / total_dram if total_dram else 0.0,
                mean_latency_cycles=float(lats[mask].mean()) if n else 0.0,
                est_bytes=est_bytes,
                est_bandwidth_gibs=(
                    est_bytes / duration_s / GiB if duration_s > 0 else 0.0
                ),
                page_share=float(page_shares[i]) if i < len(page_shares) else 0.0,
            )
        )
    return rows


def render_tier_rows(rows: list[dict], title: str = "Tier usage") -> str:
    """Format per-tier dict rows as the standard exhibit table.

    The one formatter behind both :func:`render_tier_usage` and the
    scenario report's per-trial breakdowns, so the analysis view and
    ``repro run`` output can never drift apart.  Row keys match what
    the tiering trial recipe emits: ``name``, ``level`` (pretty
    string), ``pages`` (page share), ``samples``, ``sample_share``,
    ``mean_latency``, ``est_gibs``.
    """
    return table(
        ["tier", "level", "pages", "samples", "share", "mean lat", "est GiB/s"],
        [
            [
                r["name"],
                r["level"],
                f"{r['pages'] * 100:.0f}%",
                r["samples"],
                f"{r['sample_share'] * 100:.1f}%",
                f"{r['mean_latency']:.0f}cy",
                f"{r['est_gibs']:.2f}",
            ]
            for r in rows
        ],
        title=title,
    )


def tier_usage_rows(rows: list[TierUsage]) -> list[dict]:
    """Flatten :class:`TierUsage` values to the shared dict-row shape."""
    return [
        {
            "tier": r.tier,
            "name": r.name,
            "level": r.level.pretty,
            "pages": r.page_share,
            "samples": r.samples,
            "sample_share": r.sample_share,
            "mean_latency": r.mean_latency_cycles,
            "est_gibs": r.est_bandwidth_gibs,
        }
        for r in rows
    ]


def render_tier_usage(rows: list[TierUsage], title: str = "Tier usage") -> str:
    """Format per-tier usage rows as the standard exhibit table."""
    return render_tier_rows(tier_usage_rows(rows), title=title)


__all__ = [
    "TierUsage",
    "render_tier_rows",
    "render_tier_usage",
    "tier_usage_rows",
    "tiering_breakdown",
]
