"""Sampling-bias metrics: score a sampled hotness profile against
exhaustive ground truth.

The ``sampling_accuracy`` scenario kind runs each registered sampling
strategy (:mod:`repro.spe.strategies`) over a workload and compares the
per-page hotness it reports with an **exhaustive** pass that counts
every memory operation of the same op sources.  Four bias axes, all
computed vectorized:

* ``rank_error`` — normalised Spearman-footrule distance between the
  true and estimated hotness *rankings* of the truly-accessed pages
  (0 = identical ordering, 1 = worst possible): the metric the hotness
  placer actually depends on;
* ``miss_ratio_error`` — excess miss ratio of a near-tier placement
  built from the *estimated* ranking over one built from the true
  ranking, evaluated on true access counts (placement regret, >= 0);
* dead zones — ``dead_zone_count`` / ``dead_zone_max_width`` /
  ``dead_access_fraction``: contiguous runs of truly-accessed pages
  the sampler never saw at all (the Continuous-Memory-Profiler bias
  signature of hash-filtered schemes);
* ``rate_deviation`` — relative deviation of the achieved sample count
  from the target ``mem_counted / period`` (the paper's Eq. 1 accuracy,
  as a symmetric error).

Ground truth for phase workloads is *statistical*: the address function
is deterministic per op index, so enumerating every index reproduces
the exact access stream the sampler drew from.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cpu.ops import OpKind
from repro.errors import AnalysisError
from repro.machine.tiers import page_hotness

__all__ = [
    "SamplingBias",
    "align_or_raise",
    "dead_zones",
    "exhaustive_page_hotness",
    "hotness_rank_error",
    "miss_ratio_error",
    "sample_rate_deviation",
    "score_sampling",
]


@dataclass(frozen=True)
class SamplingBias:
    """Bias metrics of one sampled hotness profile vs ground truth."""

    #: normalised Spearman-footrule distance of the hotness rankings
    rank_error: float
    #: excess near-tier miss ratio of the estimated ranking (>= 0)
    miss_ratio_error: float
    #: contiguous runs of accessed-but-never-sampled pages
    dead_zone_count: int
    #: widest dead run, in pages
    dead_zone_max_width: int
    #: fraction of true accesses falling in dead pages
    dead_access_fraction: float
    #: relative deviation of achieved samples from ``mem / period``
    rate_deviation: float

    def as_row(self) -> dict:
        """Flat dict of the metrics (report/JSON friendly)."""
        return {
            "rank_error": self.rank_error,
            "miss_ratio_error": self.miss_ratio_error,
            "dead_zone_count": self.dead_zone_count,
            "dead_zone_max_width": self.dead_zone_max_width,
            "dead_access_fraction": self.dead_access_fraction,
            "rate_deviation": self.rate_deviation,
        }


def align_or_raise(truth: np.ndarray, est: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Validate two allocation-ordered hotness vectors align; cast float."""
    truth = np.asarray(truth, dtype=np.float64)
    est = np.asarray(est, dtype=np.float64)
    if truth.shape != est.shape or truth.ndim != 1:
        raise AnalysisError(
            f"hotness vectors must be equal-length 1-D, "
            f"got {truth.shape} vs {est.shape}"
        )
    return truth, est


def exhaustive_page_hotness(
    workload, seed: int = 0, chunk: int = 1 << 20
) -> np.ndarray:
    """Ground-truth per-page access counts by enumerating every op.

    Walks every phase x thread op source of ``workload`` in ``chunk``-
    sized index blocks, counts loads+stores per mapped page (allocation
    order, aligned with :func:`repro.machine.tiers.page_hotness`).  The
    dedicated RNG stream only feeds ``ops_at``'s signature; phase
    address/kind functions are deterministic per index, so the result
    is exact and reproducible per seed.
    """
    if chunk <= 0:
        raise AnalysisError(f"chunk must be positive, got {chunk}")
    aspace = workload.process.address_space
    rng = np.random.default_rng([seed, 0xE0])
    total = None
    for phase in workload.phases:
        for tidx in range(workload.phase_threads(phase)):
            src = workload.op_source(phase, tidx)
            for start in range(0, src.n_ops, chunk):
                idx = np.arange(
                    start, min(start + chunk, src.n_ops), dtype=np.int64
                )
                kinds, addrs = src.ops_at(idx, rng)
                mem = (kinds == OpKind.LOAD) | (kinds == OpKind.STORE)
                counts = page_hotness(aspace, addrs[mem])
                total = counts if total is None else total + counts
    if total is None:
        return np.zeros(0, dtype=np.int64)
    return total


def _hotness_ranks(scores: np.ndarray) -> np.ndarray:
    """Rank per page, hottest = 0; ties break towards lower indices.

    The same ``argsort(-scores, kind="stable")`` order the hotness
    placer uses, so rank error measures exactly what placement sees.
    """
    order = np.argsort(-scores, kind="stable")
    ranks = np.empty(scores.size, dtype=np.int64)
    ranks[order] = np.arange(scores.size, dtype=np.int64)
    return ranks


def hotness_rank_error(truth: np.ndarray, est: np.ndarray) -> float:
    """Normalised Spearman-footrule distance over truly-accessed pages.

    Restricted to pages with true accesses (cold pages would flood the
    metric with zero-count ties); ``sum |rank_t - rank_e|`` divided by
    its maximum (``n^2 / 2`` for a permutation of n pages), so 0 means
    the estimated ordering is exact and 1 is a full reversal.
    """
    truth, est = align_or_raise(truth, est)
    hot = truth > 0
    n = int(hot.sum())
    if n <= 1:
        return 0.0
    rt = _hotness_ranks(truth[hot])
    re = _hotness_ranks(est[hot])
    max_footrule = n * n / 2.0
    return float(np.abs(rt - re).sum() / max_footrule)


def miss_ratio_error(
    truth: np.ndarray, est: np.ndarray, near_fraction: float = 0.5
) -> float:
    """Placement regret of the estimated ranking (excess miss ratio).

    A near tier holding the top ``near_fraction`` of pages is filled
    twice — once by the true ranking (the oracle), once by the
    estimated one — and both placements are charged with the *true*
    access counts.  The result is the extra fraction of accesses the
    estimated placement sends to far memory; 0 means the sampler's
    ranking places exactly as well as ground truth.
    """
    truth, est = align_or_raise(truth, est)
    if not 0.0 < near_fraction < 1.0:
        raise AnalysisError(
            f"near_fraction must be in (0, 1), got {near_fraction}"
        )
    total = truth.sum()
    if truth.size == 0 or total <= 0:
        return 0.0
    budget = max(1, int(round(near_fraction * truth.size)))
    oracle_near = np.argsort(-truth, kind="stable")[:budget]
    est_near = np.argsort(-est, kind="stable")[:budget]
    miss_oracle = 1.0 - truth[oracle_near].sum() / total
    miss_est = 1.0 - truth[est_near].sum() / total
    return float(max(0.0, miss_est - miss_oracle))


def dead_zones(truth: np.ndarray, est: np.ndarray) -> tuple[int, int, float]:
    """(count, max width, access fraction) of never-sampled page runs.

    A page is *dead* when ground truth accessed it but the sampler
    reported zero samples; consecutive dead pages (allocation order)
    form one zone.  The access fraction weights dead pages by their
    true counts — the share of real traffic the profile is blind to.
    """
    truth, est = align_or_raise(truth, est)
    dead = (truth > 0) & (est == 0)
    if not dead.any():
        return 0, 0, 0.0
    edges = np.diff(np.concatenate(([0], dead.astype(np.int8), [0])))
    starts = np.flatnonzero(edges == 1)
    ends = np.flatnonzero(edges == -1)
    widths = ends - starts
    total = truth.sum()
    frac = float(truth[dead].sum() / total) if total > 0 else 0.0
    return int(starts.size), int(widths.max()), frac


def sample_rate_deviation(samples: int, mem_counted: int, period: int) -> float:
    """Relative deviation of the achieved rate from ``mem / period``.

    The symmetric-error form of the paper's Eq. 1 sampling accuracy:
    ``|samples * period - mem| / mem`` (0 when the strategy hits the
    target rate exactly; 0 by convention when nothing was counted).
    """
    if period <= 0:
        raise AnalysisError(f"period must be positive, got {period}")
    if mem_counted <= 0:
        return 0.0
    return float(abs(samples * period - mem_counted) / mem_counted)


def score_sampling(
    truth: np.ndarray,
    est: np.ndarray,
    *,
    samples: int,
    mem_counted: int,
    period: int,
    near_fraction: float = 0.5,
) -> SamplingBias:
    """All bias metrics of one sampled profile in one call.

    ``truth`` and ``est`` are allocation-ordered per-page hotness
    vectors (:func:`exhaustive_page_hotness` and
    :func:`repro.machine.tiers.page_hotness` respectively); ``samples``
    is the strategy's processed sample count and ``mem_counted`` the
    ground-truth retired loads+stores.
    """
    count, width, frac = dead_zones(truth, est)
    return SamplingBias(
        rank_error=hotness_rank_error(truth, est),
        miss_ratio_error=miss_ratio_error(truth, est, near_fraction),
        dead_zone_count=count,
        dead_zone_max_width=width,
        dead_access_fraction=frac,
        rate_deviation=sample_rate_deviation(samples, mem_counted, period),
    )
