"""Terminal plotting for the reproduction figures.

The paper's figures are regenerated as data series plus ASCII renderings
(matplotlib is not available offline).  Three renderers cover every
figure type in the evaluation:

* :func:`line_plot` — Figs. 2, 3, 8, 9, 10 (series over x),
* :func:`scatter_plot` — Figs. 4, 5, 6 (address-over-time scatter),
* :func:`table` — numeric series as aligned rows (all figures' data).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError


def _fmt(v: float) -> str:
    if v == 0:
        return "0"
    if abs(v) >= 1e5 or abs(v) < 1e-3:
        return f"{v:.2e}"
    if abs(v) >= 100:
        return f"{v:.0f}"
    return f"{v:.3g}"


def line_plot(
    series: dict[str, tuple[np.ndarray, np.ndarray]],
    width: int = 72,
    height: int = 18,
    title: str = "",
    logx: bool = False,
) -> str:
    """Render one or more (x, y) series as an ASCII chart."""
    if not series:
        raise ReproError("no series to plot")
    marks = "*+o#@%&"
    xs_all = np.concatenate([np.asarray(x, dtype=float) for x, _ in series.values()])
    ys_all = np.concatenate([np.asarray(y, dtype=float) for _, y in series.values()])
    if xs_all.size == 0:
        raise ReproError("empty series")
    if logx:
        if (xs_all <= 0).any():
            raise ReproError("logx requires positive x values")
        xs_all = np.log10(xs_all)
    x0, x1 = float(xs_all.min()), float(xs_all.max())
    y0, y1 = float(ys_all.min()), float(ys_all.max())
    if x1 == x0:
        x1 = x0 + 1.0
    if y1 == y0:
        y1 = y0 + 1.0
    grid = [[" "] * width for _ in range(height)]
    for si, (name, (x, y)) in enumerate(series.items()):
        x = np.asarray(x, dtype=float)
        if logx:
            x = np.log10(x)
        y = np.asarray(y, dtype=float)
        cols = np.clip(((x - x0) / (x1 - x0) * (width - 1)).astype(int), 0, width - 1)
        rows = np.clip(
            ((y - y0) / (y1 - y0) * (height - 1)).astype(int), 0, height - 1
        )
        for c, r in zip(cols, rows):
            grid[height - 1 - r][c] = marks[si % len(marks)]
    lines = []
    if title:
        lines.append(title)
    lines.append(f"y: [{_fmt(y0)}, {_fmt(y1)}]")
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    xlabel = f"x: [{_fmt(10**x0 if logx else x0)}, {_fmt(10**x1 if logx else x1)}]"
    if logx:
        xlabel += " (log)"
    lines.append(xlabel)
    legend = "  ".join(
        f"{marks[i % len(marks)]}={name}" for i, name in enumerate(series)
    )
    lines.append(legend)
    return "\n".join(lines)


def scatter_plot(
    times: np.ndarray,
    addrs: np.ndarray,
    bands: list[tuple[str, int, int]] | None = None,
    width: int = 72,
    height: int = 24,
    title: str = "",
) -> str:
    """Address-over-time scatter with named address bands (Figs. 4-6)."""
    t = np.asarray(times, dtype=float)
    a = np.asarray(addrs, dtype=np.float64)
    if t.shape != a.shape:
        raise ReproError("times and addrs must match")
    if t.size == 0:
        raise ReproError("no samples to plot")
    t0, t1 = float(t.min()), float(t.max())
    a0, a1 = float(a.min()), float(a.max())
    if bands:
        a0 = min(a0, float(min(b[1] for b in bands)))
        a1 = max(a1, float(max(b[2] for b in bands)))
    if t1 == t0:
        t1 = t0 + 1e-9
    if a1 == a0:
        a1 = a0 + 1.0
    grid = [[" "] * width for _ in range(height)]
    cols = np.clip(((t - t0) / (t1 - t0) * (width - 1)).astype(int), 0, width - 1)
    rows = np.clip(((a - a0) / (a1 - a0) * (height - 1)).astype(int), 0, height - 1)
    for c, r in zip(cols, rows):
        grid[height - 1 - r][c] = "."
    labels = [""] * height
    for name, lo, hi in bands or []:
        r = int((((lo + hi) / 2 - a0) / (a1 - a0)) * (height - 1))
        r = min(max(r, 0), height - 1)
        labels[height - 1 - r] = f" <- {name}"
    lines = []
    if title:
        lines.append(title)
    lines.append(f"addr: [0x{int(a0):x}, 0x{int(a1):x}]")
    lines.extend("|" + "".join(row) + lbl for row, lbl in zip(grid, labels))
    lines.append("+" + "-" * width)
    lines.append(f"t: [{_fmt(t0)}s, {_fmt(t1)}s]  ({t.size} samples)")
    return "\n".join(lines)


def table(
    headers: list[str], rows: list[list], title: str = ""
) -> str:
    """Aligned text table (the numeric payload behind every figure)."""
    if not headers:
        raise ReproError("table needs headers")
    str_rows = [[_fmt(c) if isinstance(c, float) else str(c) for c in r] for r in rows]
    for r in str_rows:
        if len(r) != len(headers):
            raise ReproError(
                f"row width {len(r)} != header width {len(headers)}"
            )
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)
