"""Temporal post-processing of NMO series (the scripting component).

NMO's Python post-processing layer (paper §III) turns raw series and
sample streams into the temporal views: resampling onto uniform grids,
phase segmentation, and rate computation.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError

Series = tuple[np.ndarray, np.ndarray]


def _validate(series: Series) -> tuple[np.ndarray, np.ndarray]:
    t = np.asarray(series[0], dtype=np.float64)
    v = np.asarray(series[1], dtype=np.float64)
    if t.shape != v.shape or t.ndim != 1:
        raise ReproError("series must be two equal-length 1-D arrays")
    if t.size and (np.diff(t) < 0).any():
        raise ReproError("series timestamps must be non-decreasing")
    return t, v


def resample(series: Series, dt: float, t_end: float | None = None) -> Series:
    """Step-interpolate a series onto a uniform grid of spacing ``dt``."""
    if dt <= 0:
        raise ReproError("dt must be positive")
    t, v = _validate(series)
    if t.size == 0:
        return np.zeros(0), np.zeros(0)
    end = t_end if t_end is not None else float(t[-1])
    grid = np.arange(0.0, end + dt / 2, dt)
    idx = np.clip(np.searchsorted(t, grid, side="right") - 1, 0, t.size - 1)
    return grid, v[idx]


def bin_samples(
    times: np.ndarray, dt: float, t_end: float | None = None,
    weights: np.ndarray | None = None,
) -> Series:
    """Histogram sample timestamps into ``dt`` bins (counts or weights)."""
    if dt <= 0:
        raise ReproError("dt must be positive")
    t = np.asarray(times, dtype=np.float64)
    if t.size == 0:
        return np.zeros(0), np.zeros(0)
    end = t_end if t_end is not None else float(t.max())
    n_bins = max(1, int(np.ceil(end / dt)))
    edges = np.arange(0, n_bins + 1) * dt
    counts, _ = np.histogram(t, bins=edges, weights=weights)
    return edges[:-1], counts.astype(np.float64)


def rate_of(series: Series) -> Series:
    """Discrete derivative: value change per second between points."""
    t, v = _validate(series)
    if t.size < 2:
        return np.zeros(0), np.zeros(0)
    dts = np.diff(t)
    if (dts <= 0).any():
        raise ReproError("rate_of needs strictly increasing timestamps")
    return t[1:], np.diff(v) / dts


def phase_segments(
    series: Series, threshold: float, min_duration: float = 0.0
) -> list[tuple[float, float, bool]]:
    """Segment a series into above/below-threshold intervals.

    Returns ``(start, end, above)`` tuples — e.g. to find the
    high-bandwidth phases of the In-memory Analytics run or the
    initialisation-vs-steady-state split the paper discusses for
    capacity planning.
    """
    t, v = _validate(series)
    if t.size == 0:
        return []
    above = v >= threshold
    segments: list[tuple[float, float, bool]] = []
    start = float(t[0])
    state = bool(above[0])
    for i in range(1, t.size):
        if bool(above[i]) != state:
            end = float(t[i])
            if end - start >= min_duration:
                segments.append((start, end, state))
            start = end
            state = bool(above[i])
    end = float(t[-1])
    if end - start >= min_duration or not segments:
        segments.append((start, end, state))
    return segments


def saturation_point(series: Series, fraction: float = 0.99) -> float:
    """First time the series reaches ``fraction`` of its maximum."""
    if not 0 < fraction <= 1:
        raise ReproError("fraction must be in (0, 1]")
    t, v = _validate(series)
    if t.size == 0:
        raise ReproError("empty series")
    peak = v.max()
    if peak <= 0:
        return float(t[0])
    return float(t[np.argmax(v >= fraction * peak)])
