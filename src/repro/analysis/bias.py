"""Sampling-bias analysis — the paper's §IX future work.

"For future works, we plan to continue the evaluation of the bias when
sampling the same event in different positions of code."

Given SPE samples carrying program counters, this module quantifies how
evenly the sampler covers the instruction positions that execute equally
often.  For a loop body where every PC executes once per iteration, an
unbiased sampler yields a near-uniform PC histogram; periodic aliasing
(the effect SPE's interval perturbation exists to prevent) concentrates
samples on a subset of PCs.

Metrics:

* :func:`pc_histogram` — samples per program counter,
* :func:`bias_index` — normalised chi-square distance from uniform
  (0 = perfectly even, 1 = everything on one PC),
* :func:`coverage` — fraction of expected PCs observed at all.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError


def pc_histogram(pcs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Unique program counters and their sample counts, sorted by PC."""
    pcs = np.asarray(pcs, dtype=np.uint64)
    if pcs.size == 0:
        raise ReproError("no samples")
    uniq, counts = np.unique(pcs, return_counts=True)
    return uniq, counts


def bias_index(pcs: np.ndarray, n_positions: int | None = None) -> float:
    """Chi-square-based unevenness in [0, 1] against a uniform target.

    ``n_positions`` is the number of equally-hot code positions; when
    omitted, the distinct PCs observed are used (which *understates*
    bias if aliasing hides positions entirely — pass the true count when
    known).
    """
    _uniq, counts = pc_histogram(pcs)
    n = int(counts.sum())
    k = n_positions if n_positions is not None else counts.size
    if k <= 0:
        raise ReproError("n_positions must be positive")
    if k < counts.size:
        raise ReproError(
            f"observed {counts.size} distinct PCs > n_positions {k}"
        )
    full = np.zeros(k, dtype=np.float64)
    full[: counts.size] = counts
    expected = n / k
    chi2 = float(((full - expected) ** 2 / expected).sum())
    # normalise: max chi-square is when all n land on one of k cells
    chi2_max = (n - expected) ** 2 / expected + (k - 1) * expected
    return float(chi2 / chi2_max) if chi2_max > 0 else 0.0


def coverage(pcs: np.ndarray, n_positions: int) -> float:
    """Share of the expected code positions observed at least once."""
    if n_positions <= 0:
        raise ReproError("n_positions must be positive")
    uniq, _ = pc_histogram(pcs)
    return min(1.0, uniq.size / n_positions)


@dataclass(frozen=True)
class BiasReport:
    """Bias metrics for one profiled run."""

    n_samples: int
    n_distinct_pcs: int
    bias: float
    coverage: float
    top_pc_share: float


def analyse_bias(pcs: np.ndarray, n_positions: int) -> BiasReport:
    """Full bias report against a known position count."""
    uniq, counts = pc_histogram(pcs)
    return BiasReport(
        n_samples=int(counts.sum()),
        n_distinct_pcs=int(uniq.size),
        bias=bias_index(pcs, n_positions=n_positions),
        coverage=coverage(pcs, n_positions),
        top_pc_share=float(counts.max() / counts.sum()),
    )
