"""NMO's extensible post-processing / scripting layer (paper §III)."""

from repro.analysis.bias import (
    BiasReport,
    analyse_bias,
    bias_index,
    coverage,
    pc_histogram,
)
from repro.analysis.accuracy import (
    TrialStats,
    aggregate_trials,
    estimated_total_accesses,
    linearity_check,
    sampling_accuracy,
    time_overhead,
)
from repro.analysis.plotting import line_plot, scatter_plot, table
from repro.analysis.sampling import (
    SamplingBias,
    dead_zones,
    exhaustive_page_hotness,
    hotness_rank_error,
    miss_ratio_error,
    sample_rate_deviation,
    score_sampling,
)
from repro.analysis.temporal import (
    bin_samples,
    phase_segments,
    rate_of,
    resample,
    saturation_point,
)
from repro.analysis.tiering import (
    TierUsage,
    render_tier_usage,
    tiering_breakdown,
)

__all__ = [
    "BiasReport",
    "SamplingBias",
    "TierUsage",
    "TrialStats",
    "aggregate_trials",
    "analyse_bias",
    "bias_index",
    "coverage",
    "dead_zones",
    "pc_histogram",
    "bin_samples",
    "estimated_total_accesses",
    "exhaustive_page_hotness",
    "hotness_rank_error",
    "line_plot",
    "linearity_check",
    "miss_ratio_error",
    "phase_segments",
    "rate_of",
    "render_tier_usage",
    "resample",
    "sample_rate_deviation",
    "sampling_accuracy",
    "saturation_point",
    "scatter_plot",
    "score_sampling",
    "table",
    "tiering_breakdown",
    "time_overhead",
]
