"""Experiment orchestration: parallel trial execution + result caching.

The evaluation layer (``repro.evalharness``) describes *what* each
paper exhibit computes; this package decides *how* the grid of
independent trials actually runs:

:class:`ParallelRunner`
    Fans :class:`TrialSpec` lists out over a process pool with
    deterministic per-trial seeding and spec-order result collection,
    so ``workers=N`` is byte-identical to the serial run.
:class:`ResultCache`
    A content-addressed on-disk store keyed by (experiment, config,
    seed, package version); repeated invocations become cache hits,
    inspectable via ``python -m repro cache stats``.

Quickstart::

    from repro.orchestrate import ParallelRunner, ResultCache, TrialSpec

    cache = ResultCache()          # ~/.cache/repro by default
    runner = ParallelRunner(workers=8, cache=cache)
    specs = [TrialSpec("demo", {"period": p}, seed=t)
             for p in (1024, 4096) for t in range(5)]
    rows = runner.map(my_module.run_trial, specs)   # ordered like specs
"""

from repro.orchestrate.cache import (
    DEFAULT_CACHE_DIR,
    CacheStats,
    ResultCache,
    cache_key,
    canonical_config,
    default_cache_dir,
    make_cache,
)
from repro.orchestrate.pool import WorkerPool
from repro.orchestrate.runner import (
    ParallelRunner,
    RunReport,
    TrialSpec,
    default_workers,
    derive_seed,
)

__all__ = [
    "DEFAULT_CACHE_DIR",
    "CacheStats",
    "ParallelRunner",
    "ResultCache",
    "RunReport",
    "TrialSpec",
    "WorkerPool",
    "cache_key",
    "canonical_config",
    "default_cache_dir",
    "default_workers",
    "derive_seed",
    "make_cache",
]
