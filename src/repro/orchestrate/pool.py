"""Persistent worker pool: long-lived processes shared across jobs.

:class:`~repro.orchestrate.runner.ParallelRunner` historically built a
fresh :class:`~concurrent.futures.ProcessPoolExecutor` per ``map`` call
and tore it down afterwards — fine for one-shot figure runs, fatal for
a long-running profiling service where every submitted job would pay
pool spin-up and leak teardown races.  :class:`WorkerPool` is the
persistent replacement:

* workers are plain ``multiprocessing`` processes created **once** and
  reused across an arbitrary number of jobs — worker PIDs stay stable
  and no descriptors accumulate per job (pinned by
  ``tests/orchestrate/test_worker_pool.py``),
* task completion is reported as an *event stream*
  (``done`` / ``error`` / ``lost``), which is what lets the serve
  scheduler stream partial results and interleave trials from many
  jobs on one pool,
* a worker killed mid-task is detected (``lost`` event naming the dead
  PID), and a replacement worker is spawned so capacity never decays —
  the fault-tolerance substrate behind job retries and ``partial``
  job states in :mod:`repro.serve`.

Tasks are ``(fn, arg)`` pairs; both must be picklable.  Events are
tuples ``(kind, task_id, payload)`` where payload is the result
(``done``), the raised exception or its string rendering (``error``),
or a human-readable loss reason (``lost``).

Large ``done`` payloads do not travel through the event pipe: workers
encode them into the columnar substrate format and ship only a
:class:`~repro.substrate.ShmResult` handle to a shared-memory segment
(see :mod:`repro.substrate.shm`); the parent reattaches and decodes at
the single delivery point in :meth:`WorkerPool.next_event`.  Results
the substrate cannot encode — and any payload when
``REPRO_RESULT_TRANSPORT=pickle`` is set — fall back to ordinary
pickling over the pipe.
"""

from __future__ import annotations

import collections
import itertools
import multiprocessing as mp
import os
import pickle
import queue as queuelib
import time
from typing import Any, Callable

from repro.errors import ReproError, SubstrateError
from repro.substrate import shm as _shm

#: event kinds a pool can report for a submitted task
EVENT_KINDS = ("done", "error", "lost")

_STOP = None  # sentinel a worker interprets as "exit the loop"


def _worker_main(tasks: mp.Queue, events: mp.Queue) -> None:
    """Worker loop: pull ``(task_id, fn, arg)``, announce, run, report.

    The ``start`` announcement (carrying the worker PID) is what lets
    the parent attribute an in-flight task to a worker that later dies;
    exceptions are shipped back pickled when possible, as strings
    otherwise, so one bad trial never wedges the pool.
    """
    while True:
        item = tasks.get()
        if item is _STOP:
            break
        task_id, fn, arg = item
        events.put(("start", task_id, os.getpid()))
        try:
            result = fn(arg)
        except BaseException as exc:  # noqa: BLE001 - shipped to parent
            try:
                pickle.dumps(exc)
                payload: Any = exc
            except Exception:
                payload = f"{type(exc).__name__}: {exc}"
            events.put(("error", task_id, payload))
        else:
            events.put(("done", task_id, _shm.marshal(result)))


class WorkerPool:
    """A fixed-capacity pool of persistent, crash-tolerant workers.

    ``submit`` returns a task id; ``next_event`` delivers completions
    in whatever order workers finish.  The pool never raises on a
    worker crash — it reports a ``lost`` event for the task the dead
    worker was running and respawns a replacement, so callers decide
    the policy (retry, degrade, fail).
    """

    def __init__(self, workers: int = 2, ctx: str | None = None) -> None:
        if workers < 1:
            raise ReproError(f"worker pool needs >= 1 worker, got {workers}")
        self.workers = workers
        # fork keeps startup cheap and lets tests ship module-local fns
        self._mp = mp.get_context(ctx or "fork")
        self._tasks: mp.Queue = self._mp.Queue()
        self._events: mp.Queue = self._mp.Queue()
        self._procs: list = []
        self._task_ids = itertools.count()
        #: task_id -> worker pid, set once the worker announces "start"
        self._started: dict[int, int] = {}
        #: task ids submitted and not yet reported done/error/lost
        self._outstanding: set[int] = set()
        #: losses detected but not yet delivered via next_event
        self._lost_backlog: collections.deque = collections.deque()
        self._closed = False
        for _ in range(workers):
            self._spawn()

    # -- lifecycle ---------------------------------------------------------

    def _spawn(self) -> None:
        p = self._mp.Process(
            target=_worker_main, args=(self._tasks, self._events), daemon=True
        )
        p.start()
        self._procs.append(p)

    def pids(self) -> list[int]:
        """PIDs of the live workers (stable while nothing crashes)."""
        return [p.pid for p in self._procs if p.is_alive()]

    def close(self, timeout: float = 5.0) -> None:
        """Stop every worker; idempotent."""
        if self._closed:
            return
        self._closed = True
        for _ in self._procs:
            try:
                self._tasks.put(_STOP)
            except (ValueError, OSError):
                break
        deadline = time.monotonic() + timeout
        for p in self._procs:
            p.join(timeout=max(0.0, deadline - time.monotonic()))
            if p.is_alive():
                p.terminate()
                p.join(timeout=1.0)
        while True:  # undelivered results may hold shared-memory segments
            try:
                ev = self._events.get_nowait()
            except (queuelib.Empty, ValueError, OSError):
                break
            _shm.discard(ev[2])
        for q in (self._tasks, self._events):
            q.close()
            q.cancel_join_thread()
        self._procs.clear()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- task flow ---------------------------------------------------------

    def submit(self, fn: Callable[[Any], Any], arg: Any) -> int:
        """Queue one task; returns its id (matched by later events)."""
        if self._closed:
            raise ReproError("worker pool is closed")
        task_id = next(self._task_ids)
        self._outstanding.add(task_id)
        self._tasks.put((task_id, fn, arg))
        return task_id

    @property
    def outstanding(self) -> int:
        """Tasks submitted whose terminal event has not been delivered."""
        return len(self._outstanding)

    def next_event(
        self, timeout: float | None = None
    ) -> tuple[str, int, Any] | None:
        """The next terminal event, or ``None`` if ``timeout`` expires.

        Internally consumes ``start`` announcements (tracking which
        worker runs which task) and converts detected worker deaths
        into ``lost`` events for the tasks they were running.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            if self._lost_backlog:
                task_id, reason = self._lost_backlog.popleft()
                return ("lost", task_id, reason)
            try:
                kind, task_id, payload = self._events.get(timeout=0.05)
            except queuelib.Empty:
                self._reap()
                if self._lost_backlog:
                    continue
                if deadline is not None and time.monotonic() >= deadline:
                    return None
                continue
            if kind == "start":
                self._started[task_id] = payload
                continue
            if task_id not in self._outstanding:
                # late event for a task already reported lost; free its
                # shared-memory segment so the orphaned result cannot leak
                _shm.discard(payload)
                continue
            self._outstanding.discard(task_id)
            self._started.pop(task_id, None)
            if kind == "done" and isinstance(payload, _shm.ShmResult):
                try:
                    payload = _shm.unmarshal(payload)
                except SubstrateError as exc:
                    return ("error", task_id, f"{type(exc).__name__}: {exc}")
            return (kind, task_id, payload)

    def _reap(self) -> None:
        """Replace dead workers; queue losses for their in-flight tasks.

        Events the dead worker managed to flush before dying are
        honoured first: the queue is drained into ``_started`` (and the
        loss check skips tasks no longer outstanding), so a task that
        completed just before the crash is never misreported as lost.
        """
        dead = [(i, p) for i, p in enumerate(self._procs) if not p.is_alive()]
        if not dead:
            return
        # drain flushed events so completed-then-crashed tasks survive
        buffered = []
        while True:
            try:
                ev = self._events.get_nowait()
            except queuelib.Empty:
                break
            if ev[0] == "start":
                self._started[ev[1]] = ev[2]
            else:
                buffered.append(ev)
        for kind, task_id, payload in buffered:
            if task_id in self._outstanding:
                self._outstanding.discard(task_id)
                self._started.pop(task_id, None)
                self._events.put((kind, task_id, payload))
        for i, p in sorted(dead, reverse=True):
            p.join(timeout=0.1)
            dead_pid, exitcode = p.pid, p.exitcode
            del self._procs[i]
            if not self._closed:
                self._spawn()
            for task_id, pid in list(self._started.items()):
                if pid != dead_pid or task_id not in self._outstanding:
                    continue
                self._started.pop(task_id, None)
                self._outstanding.discard(task_id)
                self._lost_backlog.append(
                    (task_id, f"worker {dead_pid} died (exit code {exitcode})")
                )
