"""Content-addressed on-disk result cache for experiment trials.

The paper's evaluation is a grid of independent trials; re-running
``python -m repro fig8`` recomputes every one of them from scratch.
:class:`ResultCache` turns repeated runs into disk reads: each trial
result is stored under a key derived from *what was computed* —

* the experiment name,
* the trial configuration (a dataclass or plain dict of primitives),
* the trial seed,
* the ``repro`` package version.

A version bump invalidates every entry at once; source edits *without*
a bump are invisible to the key, so run ``python -m repro cache clear``
after changing simulator code.

Keys are SHA-256 digests of a canonical JSON rendering of those four
components, so any config-field change produces a different key and the
stale entry is simply never read again.  Values are stored with
:mod:`pickle` and written atomically (temp file + ``os.replace``) so a
killed run never leaves a torn entry.

Columnar-encodable values additionally get a ``.cols`` sidecar holding
the :mod:`repro.substrate` payload.  A warm hit ``mmap``s the sidecar
and decodes it as zero-copy column views — no ``pickle.loads``, no
array copies — while the ``.pkl`` stays byte-identical to the
pre-substrate cache and remains the source of truth for
:meth:`contains`/:meth:`entries`.  Legacy directories (``.pkl`` only)
read through transparently, and a torn or corrupt file of either kind
is deleted and counted as a miss rather than failing the sweep.

Hit/miss/store counters (split by mmap vs pickle deserialization, with
cumulative deserialization seconds) are kept per session and folded
into a persistent ``stats.json`` in the cache directory by
:meth:`flush_stats`, which is what ``python -m repro cache stats``
reports.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import mmap
import numbers
import os
import pickle
import tempfile
import time
from pathlib import Path
from typing import Any

import numpy as np

from repro.errors import SubstrateError
from repro.substrate import codec as _codec
from repro.substrate.format import FORMAT_VERSION as SUBSTRATE_VERSION

#: default on-disk location when $REPRO_CACHE_DIR is unset
DEFAULT_CACHE_DIR = Path.home() / ".cache" / "repro"


def default_cache_dir() -> Path:
    """Resolve the cache directory, honouring $REPRO_CACHE_DIR at call
    time (not at import, so tests and late ``os.environ`` edits work)."""
    env = os.environ.get("REPRO_CACHE_DIR")
    return Path(env) if env else DEFAULT_CACHE_DIR

_STATS_FILE = "stats.json"
_OBJECTS_DIR = "objects"


def canonical_config(obj: Any) -> Any:
    """Reduce a trial configuration to JSON-stable primitives.

    Dataclasses flatten to their field dict, enums to ``[type, value]``,
    numpy scalars to Python numbers, arrays to (shape, dtype, content
    digest); anything else falls back to ``repr`` so exotic values
    still key deterministically within one version.
    """
    if isinstance(obj, np.ndarray):
        # never repr: numpy truncates large arrays with "...", so two
        # different arrays could collide on one key.  Object arrays
        # have no stable byte view; canonicalise their elements.
        if obj.dtype == object:
            return ["ndarray", list(obj.shape), "object",
                    canonical_config(obj.tolist())]
        digest = hashlib.sha256(
            np.ascontiguousarray(obj).tobytes()
        ).hexdigest()
        return ["ndarray", list(obj.shape), str(obj.dtype), digest]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        # forward-compatible keying: a dataclass may declare
        # ``__cache_optional__`` (a set of field names) whose fields are
        # omitted from the key while at their ``None`` default, so adding
        # such a field never invalidates previously cached entries
        # (e.g. ``MachineSpec.tiers``)
        optional = getattr(type(obj), "__cache_optional__", frozenset())
        return {
            f.name: canonical_config(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
            if not (f.name in optional and getattr(obj, f.name) is None)
        }
    if isinstance(obj, enum.Enum):
        return [type(obj).__name__, canonical_config(obj.value)]
    if isinstance(obj, dict):
        return {
            str(k): canonical_config(v)
            for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))
        }
    if isinstance(obj, (list, tuple)):
        return [canonical_config(v) for v in obj]
    if isinstance(obj, bool) or obj is None or isinstance(obj, str):
        return obj
    if isinstance(obj, numbers.Integral):
        return int(obj)
    if isinstance(obj, numbers.Real):
        return float(obj)
    if isinstance(obj, type):
        return f"{obj.__module__}.{obj.__qualname__}"
    return repr(obj)


def cache_key(
    experiment: str, config: Any, seed: int, version: str | None = None
) -> str:
    """SHA-256 key over (experiment, canonical config, seed, version)."""
    if version is None:
        import repro

        version = repro.__version__
    payload = json.dumps(
        {
            "experiment": experiment,
            "config": canonical_config(config),
            "seed": int(seed),
            "version": version,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclasses.dataclass
class CacheStats:
    """Per-session lookup counters (folded into stats.json on flush).

    ``hits`` stays the total (``hits_mmap + hits_pickle``) so existing
    consumers of stats.json keep reading the number they always did;
    the split plus the cumulative deserialization seconds per path is
    what ``repro cache stats`` uses to report hit cost.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    hits_mmap: int = 0         #: hits served as mmap'd columnar views
    hits_pickle: int = 0       #: hits that went through pickle.loads
    deser_ns_mmap: int = 0     #: deserialization time on the mmap path
    deser_ns_pickle: int = 0   #: deserialization time on the pickle path

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "hits_mmap": self.hits_mmap,
            "hits_pickle": self.hits_pickle,
            "deser_ns_mmap": self.deser_ns_mmap,
            "deser_ns_pickle": self.deser_ns_pickle,
        }


#: every counter key persisted in stats.json
_STAT_KEYS = tuple(CacheStats().as_dict())


class ResultCache:
    """Content-addressed pickle store under one cache directory.

    The cache is read and written only from the orchestrating parent
    process (workers never touch it), so no cross-process locking is
    needed; entry writes are still atomic so concurrent *invocations*
    sharing a directory stay consistent.
    """

    def __init__(
        self,
        cache_dir: str | Path | None = None,
        use_substrate: bool = True,
    ) -> None:
        self.dir = Path(cache_dir) if cache_dir else default_cache_dir()
        self.stats = CacheStats()
        #: when False, neither write nor read ``.cols`` sidecars — the
        #: pre-substrate behaviour, used by parity tests and the
        #: ``cache_hit_mmap`` benchmark's reference timing
        self.use_substrate = use_substrate

    # -- keying ------------------------------------------------------------

    def key(self, experiment: str, config: Any, seed: int) -> str:
        return cache_key(experiment, config, seed)

    # -- storage -----------------------------------------------------------

    def _objects(self) -> Path:
        return self.dir / _OBJECTS_DIR

    def _path(self, key: str) -> Path:
        return self._objects() / key[:2] / f"{key}.pkl"

    def _cols_path(self, key: str) -> Path:
        return self._objects() / key[:2] / f"{key}.cols"

    def contains(self, key: str) -> bool:
        # the .pkl is the entry; a stray .cols without one is not a hit
        return self._path(key).is_file()

    def _get_cols(self, key: str) -> Any | None:
        """Serve a hit from the mmap'd columnar sidecar; None to fall
        back to the pickle path (missing or corrupt sidecar — the
        corrupt one is deleted so it is never retried)."""
        path = self._cols_path(key)
        try:
            with open(path, "rb") as f:
                mapped = mmap.mmap(f.fileno(), 0, access=mmap.ACCESS_READ)
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            path.unlink(missing_ok=True)
            return None
        t0 = time.perf_counter_ns()
        try:
            # zero-copy: column views alias the mapping, which stays
            # alive (and the file readable) for as long as they do
            value = _codec.decode(mapped)
        except SubstrateError:
            path.unlink(missing_ok=True)
            return None
        self.stats.deser_ns_mmap += time.perf_counter_ns() - t0
        self.stats.hits += 1
        self.stats.hits_mmap += 1
        return value

    def get(self, key: str, default: Any = None) -> Any:
        """Load an entry, counting a hit or a miss.

        Prefers the mmap'd columnar sidecar (no ``pickle.loads``; see
        module docstring), reading through to the ``.pkl`` for legacy
        or non-columnar entries.  A corrupt or truncated file of either
        kind (torn by an old crash, or pickled by an incompatible
        interpreter) is deleted — a corrupt sidecar falls back to the
        pickle, a corrupt pickle is a miss and the trial recomputes.
        """
        if self.use_substrate and self._path(key).is_file():
            value = self._get_cols(key)
            if value is not None:
                return value
        path = self._path(key)
        t0 = time.perf_counter_ns()
        try:
            blob = path.read_bytes()
            value = pickle.loads(blob)
        except FileNotFoundError:
            self.stats.misses += 1
            return default
        except Exception:
            path.unlink(missing_ok=True)
            self._cols_path(key).unlink(missing_ok=True)
            self.stats.misses += 1
            return default
        self.stats.deser_ns_pickle += time.perf_counter_ns() - t0
        self.stats.hits += 1
        self.stats.hits_pickle += 1
        return value

    def put(self, key: str, value: Any) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as f:
                pickle.dump(value, f, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            Path(tmp).unlink(missing_ok=True)
            raise
        self.stats.stores += 1
        if not self.use_substrate:
            return
        # additive sidecar: the .pkl above is byte-identical to the
        # pre-substrate cache; losing a .cols (crash between the two
        # writes) only costs the next hit a pickle read-through
        payload = _codec.encode(value)
        cols = self._cols_path(key)
        if payload is None:
            cols.unlink(missing_ok=True)  # value type changed: no stale view
            return
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as f:
                f.write(payload)
            os.replace(tmp, cols)
        except BaseException:
            Path(tmp).unlink(missing_ok=True)
            raise

    # -- replication (byte-exact entry transfer) ---------------------------

    def export_entry(self, key: str) -> tuple[bytes, bytes | None]:
        """The raw on-disk bytes of one entry: ``(pkl, cols-or-None)``.

        The replication primitive: a cluster peer that
        :meth:`import_entry`'s these bytes holds a byte-identical copy
        of the entry — same pickle payload, same columnar sidecar — so
        cache keys, warm-hit mmap decoding, and parity gates behave
        exactly as if the peer had computed the trial itself.  Raises
        ``KeyError`` for unknown keys (callers decide whether a missing
        entry is an error or a skip).
        """
        path = self._path(key)
        try:
            pkl = path.read_bytes()
        except FileNotFoundError:
            raise KeyError(key) from None
        try:
            cols: bytes | None = self._cols_path(key).read_bytes()
        except FileNotFoundError:
            cols = None
        return pkl, cols

    def import_entry(
        self, key: str, pkl: bytes, cols: bytes | None = None
    ) -> None:
        """Store raw entry bytes exported from a peer, atomically.

        Writes are temp-file + ``os.replace`` like :meth:`put`, so a
        torn import never leaves a corrupt entry; the ``.pkl`` lands
        before the ``.cols`` sidecar (losing only the sidecar costs a
        pickle read-through, never a wrong result).  Counts as a store.
        """
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        for target, blob in ((path, pkl), (self._cols_path(key), cols)):
            if blob is None:
                continue
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as f:
                    f.write(blob)
                os.replace(tmp, target)
            except BaseException:
                Path(tmp).unlink(missing_ok=True)
                raise
        self.stats.stores += 1

    # -- statistics --------------------------------------------------------

    def _stats_path(self) -> Path:
        return self.dir / _STATS_FILE

    def persistent_stats(self) -> dict[str, int]:
        """Counters from stats.json (legacy files lack the newer keys,
        which read as 0)."""
        try:
            raw = json.loads(self._stats_path().read_text())
            return {k: int(raw.get(k, 0)) for k in _STAT_KEYS}
        except (OSError, ValueError):
            return {k: 0 for k in _STAT_KEYS}

    def flush_stats(self) -> dict[str, int]:
        """Fold session counters into stats.json; returns the new totals.

        stats.json also records ``substrate_version`` — the columnar
        format version the sidecars were written with.
        """
        session = self.stats.as_dict()
        if not any(session.values()):
            return self.persistent_stats()
        totals = self.persistent_stats()
        for k, v in session.items():
            totals[k] += v
        self.dir.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as f:
                json.dump({**totals, "substrate_version": SUBSTRATE_VERSION}, f)
            os.replace(tmp, self._stats_path())
        except BaseException:
            Path(tmp).unlink(missing_ok=True)
            raise
        self.stats = CacheStats()
        return totals

    # -- maintenance -------------------------------------------------------

    def entries(self) -> list[Path]:
        if not self._objects().is_dir():
            return []
        return sorted(self._objects().glob("*/*.pkl"))

    def cols_entries(self) -> list[Path]:
        """The columnar sidecar files (a subset of the entries)."""
        if not self._objects().is_dir():
            return []
        return sorted(self._objects().glob("*/*.cols"))

    def size_bytes(self) -> int:
        return sum(p.stat().st_size for p in self.entries())

    def payload_bytes(self) -> int:
        """Total bytes of columnar payloads (the ``.cols`` sidecars)."""
        return sum(p.stat().st_size for p in self.cols_entries())

    def clear(self) -> int:
        """Delete every entry (and the stats file); returns entries removed."""
        removed = 0
        for p in self.entries():
            p.unlink(missing_ok=True)
            removed += 1
        for p in self.cols_entries():
            p.unlink(missing_ok=True)
        for sub in sorted(self._objects().glob("*"), reverse=True):
            if sub.is_dir():
                try:
                    sub.rmdir()
                except OSError:
                    pass
        self._stats_path().unlink(missing_ok=True)
        self.stats = CacheStats()
        return removed

    def describe(self) -> str:
        """Human-readable stats block (the ``cache stats`` output).

        Every line keeps the ``key: value`` shape CI's smoke job parses.
        The deserialization lines answer "what does a warm hit cost":
        cumulative seconds spent turning cache files back into objects,
        split by path — mmap'd columnar views vs ``pickle.loads``.
        """
        totals = self.persistent_stats()
        for k, v in self.stats.as_dict().items():
            totals[k] += v
        n = len(self.entries())
        lines = [
            f"cache directory: {self.dir}",
            f"entries: {n}",
            f"size: {self.size_bytes() / 1024:.1f} KiB",
            f"columnar entries: {len(self.cols_entries())}",
            f"columnar payload: {self.payload_bytes() / 1024:.1f} KiB",
            f"substrate format: v{SUBSTRATE_VERSION}",
            f"hits: {totals['hits']}",
            f"hits (mmap): {totals['hits_mmap']}",
            f"hits (pickle): {totals['hits_pickle']}",
            f"deserialize (mmap): {totals['deser_ns_mmap'] / 1e6:.3f} ms",
            f"deserialize (pickle): {totals['deser_ns_pickle'] / 1e6:.3f} ms",
            f"misses: {totals['misses']}",
            f"stores: {totals['stores']}",
        ]
        return "\n".join(lines)


def make_cache(
    enabled: bool | None, cache_dir: str | Path | None = None
) -> ResultCache | None:
    """CLI/bench helper resolving the three-state ``--cache`` opt-in.

    ``enabled`` is ``True`` (``--cache``), ``False`` (an explicit
    ``--no-cache``, which always wins), or ``None`` (flag unset).  When
    unset, passing a ``cache_dir`` implies caching — asking *where* to
    cache is asking *to* cache.
    """
    if enabled is False:
        return None
    if enabled is None and cache_dir is None:
        return None
    return ResultCache(cache_dir)
