"""Content-addressed on-disk result cache for experiment trials.

The paper's evaluation is a grid of independent trials; re-running
``python -m repro fig8`` recomputes every one of them from scratch.
:class:`ResultCache` turns repeated runs into disk reads: each trial
result is stored under a key derived from *what was computed* —

* the experiment name,
* the trial configuration (a dataclass or plain dict of primitives),
* the trial seed,
* the ``repro`` package version.

A version bump invalidates every entry at once; source edits *without*
a bump are invisible to the key, so run ``python -m repro cache clear``
after changing simulator code.

Keys are SHA-256 digests of a canonical JSON rendering of those four
components, so any config-field change produces a different key and the
stale entry is simply never read again.  Values are stored with
:mod:`pickle` and written atomically (temp file + ``os.replace``) so a
killed run never leaves a torn entry.

Hit/miss/store counters are kept per session and folded into a
persistent ``stats.json`` in the cache directory by :meth:`flush_stats`,
which is what ``python -m repro cache stats`` reports.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import numbers
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any

import numpy as np

#: default on-disk location when $REPRO_CACHE_DIR is unset
DEFAULT_CACHE_DIR = Path.home() / ".cache" / "repro"


def default_cache_dir() -> Path:
    """Resolve the cache directory, honouring $REPRO_CACHE_DIR at call
    time (not at import, so tests and late ``os.environ`` edits work)."""
    env = os.environ.get("REPRO_CACHE_DIR")
    return Path(env) if env else DEFAULT_CACHE_DIR

_STATS_FILE = "stats.json"
_OBJECTS_DIR = "objects"


def canonical_config(obj: Any) -> Any:
    """Reduce a trial configuration to JSON-stable primitives.

    Dataclasses flatten to their field dict, enums to ``[type, value]``,
    numpy scalars to Python numbers, arrays to (shape, dtype, content
    digest); anything else falls back to ``repr`` so exotic values
    still key deterministically within one version.
    """
    if isinstance(obj, np.ndarray):
        # never repr: numpy truncates large arrays with "...", so two
        # different arrays could collide on one key.  Object arrays
        # have no stable byte view; canonicalise their elements.
        if obj.dtype == object:
            return ["ndarray", list(obj.shape), "object",
                    canonical_config(obj.tolist())]
        digest = hashlib.sha256(
            np.ascontiguousarray(obj).tobytes()
        ).hexdigest()
        return ["ndarray", list(obj.shape), str(obj.dtype), digest]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        # forward-compatible keying: a dataclass may declare
        # ``__cache_optional__`` (a set of field names) whose fields are
        # omitted from the key while at their ``None`` default, so adding
        # such a field never invalidates previously cached entries
        # (e.g. ``MachineSpec.tiers``)
        optional = getattr(type(obj), "__cache_optional__", frozenset())
        return {
            f.name: canonical_config(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
            if not (f.name in optional and getattr(obj, f.name) is None)
        }
    if isinstance(obj, enum.Enum):
        return [type(obj).__name__, canonical_config(obj.value)]
    if isinstance(obj, dict):
        return {
            str(k): canonical_config(v)
            for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))
        }
    if isinstance(obj, (list, tuple)):
        return [canonical_config(v) for v in obj]
    if isinstance(obj, bool) or obj is None or isinstance(obj, str):
        return obj
    if isinstance(obj, numbers.Integral):
        return int(obj)
    if isinstance(obj, numbers.Real):
        return float(obj)
    if isinstance(obj, type):
        return f"{obj.__module__}.{obj.__qualname__}"
    return repr(obj)


def cache_key(
    experiment: str, config: Any, seed: int, version: str | None = None
) -> str:
    """SHA-256 key over (experiment, canonical config, seed, version)."""
    if version is None:
        import repro

        version = repro.__version__
    payload = json.dumps(
        {
            "experiment": experiment,
            "config": canonical_config(config),
            "seed": int(seed),
            "version": version,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclasses.dataclass
class CacheStats:
    """Per-session lookup counters (folded into stats.json on flush)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    def as_dict(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "stores": self.stores}


class ResultCache:
    """Content-addressed pickle store under one cache directory.

    The cache is read and written only from the orchestrating parent
    process (workers never touch it), so no cross-process locking is
    needed; entry writes are still atomic so concurrent *invocations*
    sharing a directory stay consistent.
    """

    def __init__(self, cache_dir: str | Path | None = None) -> None:
        self.dir = Path(cache_dir) if cache_dir else default_cache_dir()
        self.stats = CacheStats()

    # -- keying ------------------------------------------------------------

    def key(self, experiment: str, config: Any, seed: int) -> str:
        return cache_key(experiment, config, seed)

    # -- storage -----------------------------------------------------------

    def _objects(self) -> Path:
        return self.dir / _OBJECTS_DIR

    def _path(self, key: str) -> Path:
        return self._objects() / key[:2] / f"{key}.pkl"

    def contains(self, key: str) -> bool:
        return self._path(key).is_file()

    def get(self, key: str, default: Any = None) -> Any:
        """Load an entry, counting a hit or a miss.

        A corrupt entry (torn by an old crash, or pickled by an
        incompatible interpreter) is deleted and counted as a miss.
        """
        path = self._path(key)
        try:
            blob = path.read_bytes()
            value = pickle.loads(blob)
        except FileNotFoundError:
            self.stats.misses += 1
            return default
        except Exception:
            path.unlink(missing_ok=True)
            self.stats.misses += 1
            return default
        self.stats.hits += 1
        return value

    def put(self, key: str, value: Any) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as f:
                pickle.dump(value, f, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            Path(tmp).unlink(missing_ok=True)
            raise
        self.stats.stores += 1

    # -- statistics --------------------------------------------------------

    def _stats_path(self) -> Path:
        return self.dir / _STATS_FILE

    def persistent_stats(self) -> dict[str, int]:
        try:
            raw = json.loads(self._stats_path().read_text())
            return {k: int(raw.get(k, 0)) for k in ("hits", "misses", "stores")}
        except (OSError, ValueError):
            return {"hits": 0, "misses": 0, "stores": 0}

    def flush_stats(self) -> dict[str, int]:
        """Fold session counters into stats.json; returns the new totals."""
        session = self.stats.as_dict()
        if not any(session.values()):
            return self.persistent_stats()
        totals = self.persistent_stats()
        for k, v in session.items():
            totals[k] += v
        self.dir.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as f:
                json.dump(totals, f)
            os.replace(tmp, self._stats_path())
        except BaseException:
            Path(tmp).unlink(missing_ok=True)
            raise
        self.stats = CacheStats()
        return totals

    # -- maintenance -------------------------------------------------------

    def entries(self) -> list[Path]:
        if not self._objects().is_dir():
            return []
        return sorted(self._objects().glob("*/*.pkl"))

    def size_bytes(self) -> int:
        return sum(p.stat().st_size for p in self.entries())

    def clear(self) -> int:
        """Delete every entry (and the stats file); returns entries removed."""
        removed = 0
        for p in self.entries():
            p.unlink(missing_ok=True)
            removed += 1
        for sub in sorted(self._objects().glob("*"), reverse=True):
            if sub.is_dir():
                try:
                    sub.rmdir()
                except OSError:
                    pass
        self._stats_path().unlink(missing_ok=True)
        self.stats = CacheStats()
        return removed

    def describe(self) -> str:
        """Human-readable stats block (the ``cache stats`` output)."""
        totals = self.persistent_stats()
        for k, v in self.stats.as_dict().items():
            totals[k] += v
        n = len(self.entries())
        lines = [
            f"cache directory: {self.dir}",
            f"entries: {n}",
            f"size: {self.size_bytes() / 1024:.1f} KiB",
            f"hits: {totals['hits']}",
            f"misses: {totals['misses']}",
            f"stores: {totals['stores']}",
        ]
        return "\n".join(lines)


def make_cache(
    enabled: bool | None, cache_dir: str | Path | None = None
) -> ResultCache | None:
    """CLI/bench helper resolving the three-state ``--cache`` opt-in.

    ``enabled`` is ``True`` (``--cache``), ``False`` (an explicit
    ``--no-cache``, which always wins), or ``None`` (flag unset).  When
    unset, passing a ``cache_dir`` implies caching — asking *where* to
    cache is asking *to* cache.
    """
    if enabled is False:
        return None
    if enabled is None and cache_dir is None:
        return None
    return ResultCache(cache_dir)
