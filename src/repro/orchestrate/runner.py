"""Parallel trial execution with deterministic seeding and ordering.

The evaluation grid (Figs. 2-11) is embarrassingly parallel: every
trial is an independent, seeded simulation.  :class:`ParallelRunner`
fans a list of :class:`TrialSpec` out over a
:class:`concurrent.futures.ProcessPoolExecutor` and collects results
back **in submission order**, so a parallel run is byte-identical to a
serial one:

* seeds are fixed in the specs *before* anything is submitted — they
  depend on the grid position, never on scheduling,
* results land in a slot indexed by spec position, never by completion
  order,
* ``workers=1`` short-circuits to a plain in-process loop (no pickling
  requirements, exact legacy behaviour).

When a :class:`~repro.orchestrate.cache.ResultCache` is attached, the
parent resolves hits up front and only submits the misses; workers
never touch the cache directory.
"""

from __future__ import annotations

import hashlib
import json
import os
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.errors import ReproError
from repro.orchestrate.cache import ResultCache, canonical_config
from repro.orchestrate.pool import WorkerPool
from repro.substrate import shm as _shm

_MISS = object()


@dataclass(frozen=True)
class _Marshalled:
    """Picklable wrapper shipping a trial's result via shared memory.

    The executor path's counterpart of what :class:`WorkerPool` workers
    do natively: the worker runs ``fn`` and parks a large columnar
    result in a shared-memory segment, so only a tiny handle crosses
    the process pipe.  The parent redeems the handle when it collects
    the future.
    """

    fn: Callable[[Any], Any]

    def __call__(self, spec: Any) -> Any:
        return _shm.marshal(self.fn(spec))


def derive_seed(*parts: Any) -> int:
    """Stable 32-bit seed from arbitrary grid coordinates.

    Hash-derived (not positional), so inserting a sweep point does not
    reseed its neighbours.
    """
    payload = json.dumps(canonical_config(list(parts)), sort_keys=True)
    digest = hashlib.sha256(payload.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big")


def default_workers() -> int:
    """Worker count for ``workers=0`` (auto): one per available core."""
    return max(1, os.cpu_count() or 1)


@dataclass(frozen=True)
class TrialSpec:
    """One unit of work: an experiment name, its config, and a seed.

    ``config`` must be picklable (it crosses the process boundary) and
    canonicalisable (it becomes part of the cache key); dataclasses and
    dicts of primitives both work.
    """

    experiment: str
    config: Any
    seed: int


@dataclass
class RunReport:
    """What happened during one :meth:`ParallelRunner.map` call."""

    total: int = 0
    cache_hits: int = 0
    executed: int = 0
    workers: int = 1
    extra: dict = field(default_factory=dict)


class ParallelRunner:
    """Execute trial specs across processes, results in spec order.

    With ``pool`` set, trials run on that persistent
    :class:`~repro.orchestrate.pool.WorkerPool` instead of a per-call
    ``ProcessPoolExecutor`` — no pool spin-up or teardown per ``map``,
    stable worker PIDs across calls, and the pool outlives the runner
    (the caller owns its lifecycle).  This is how the serve scheduler
    and any other long-running driver reuse workers across jobs.
    """

    def __init__(
        self,
        workers: int = 1,
        cache: ResultCache | None = None,
        pool: WorkerPool | None = None,
    ) -> None:
        if workers < 0:
            raise ReproError(f"workers must be >= 0 (0 = auto), got {workers}")
        self.pool = pool
        if pool is not None:
            self.workers = pool.workers
        else:
            self.workers = workers if workers > 0 else default_workers()
        self.cache = cache
        self.last_report = RunReport()

    def map(
        self,
        fn: Callable[[TrialSpec], Any],
        specs: Sequence[TrialSpec],
    ) -> list[Any]:
        """Run ``fn(spec)`` for every spec; results in spec order.

        With ``workers > 1``, ``fn`` and each spec's config must be
        picklable (use a module-level function, or a
        :func:`functools.partial` of one).  The first worker exception
        propagates; remaining futures are cancelled.
        """
        specs = list(specs)
        results: list[Any] = [None] * len(specs)
        pending: list[tuple[int, TrialSpec, str | None]] = []
        for i, spec in enumerate(specs):
            key = None
            if self.cache is not None:
                key = self.cache.key(spec.experiment, spec.config, spec.seed)
                hit = self.cache.get(key, _MISS)
                if hit is not _MISS:
                    results[i] = hit
                    continue
            pending.append((i, spec, key))

        report = RunReport(
            total=len(specs),
            cache_hits=len(specs) - len(pending),
            executed=len(pending),
            workers=self.workers,
        )
        try:
            if self.pool is not None and pending:
                self._map_on_pool(fn, pending, results)
            elif self.workers == 1 or len(pending) <= 1:
                for i, spec, key in pending:
                    value = fn(spec)
                    results[i] = value
                    if key is not None:
                        self.cache.put(key, value)
            else:
                n = min(self.workers, len(pending))
                wrapped = _Marshalled(fn)
                with ProcessPoolExecutor(max_workers=n) as pool:
                    futures = {
                        pool.submit(wrapped, spec): (i, key)
                        for i, spec, key in pending
                    }
                    # if no worker raises, this waits for all of them
                    done, not_done = wait(futures, return_when=FIRST_EXCEPTION)
                    for fut in not_done:
                        fut.cancel()
                    error: BaseException | None = None
                    for fut in futures:  # submission order
                        if fut not in done:
                            continue
                        exc = fut.exception()
                        if exc is not None:
                            error = error or exc
                            continue
                        i, key = futures[fut]
                        value = _shm.unmarshal(fut.result())
                        results[i] = value
                        if key is not None:
                            self.cache.put(key, value)
                    if error is not None:
                        raise error
        finally:
            if self.cache is not None:
                # how the hits were served (mmap'd columnar sidecar vs
                # pickle) — snapshot before flush_stats resets counters
                report.extra["cache_hits_mmap"] = self.cache.stats.hits_mmap
                report.extra["cache_hits_pickle"] = self.cache.stats.hits_pickle
                self.cache.flush_stats()
            self.last_report = report
        return results

    def _map_on_pool(
        self,
        fn: Callable[[TrialSpec], Any],
        pending: list[tuple[int, TrialSpec, str | None]],
        results: list[Any],
    ) -> None:
        """Run the cache misses on the persistent pool (spec order kept).

        A worker crash mid-trial is retried once on the replacement
        worker the pool spawned; a second loss (or a trial exception)
        propagates, mirroring the executor path's fail-fast contract.
        """
        tasks = {
            self.pool.submit(fn, spec): (i, spec, key, 0)
            for i, spec, key in pending
        }
        while tasks:
            event = self.pool.next_event(timeout=None)
            kind, task_id, payload = event
            if task_id not in tasks:
                continue  # a different owner's task (shared pool)
            i, spec, key, retries = tasks.pop(task_id)
            if kind == "done":
                results[i] = payload
                if key is not None:
                    self.cache.put(key, payload)
            elif kind == "lost" and retries < 1:
                tasks[self.pool.submit(fn, spec)] = (i, spec, key, retries + 1)
            elif kind == "lost":
                raise ReproError(f"trial lost twice to worker crashes: {payload}")
            elif isinstance(payload, BaseException):
                raise payload
            else:
                raise ReproError(f"worker trial failed: {payload}")
