"""perf event record formats.

The simulated kernel serialises records into the perf ring buffer using
the real ABI shapes: an 8-byte ``perf_event_header`` (type u32, misc u16,
size u16) followed by a type-specific payload.  NMO consumes
``PERF_RECORD_AUX`` records to learn where SPE deposited sample data in
the aux buffer (paper §IV-A: ``aux_offset``, ``aux_size``, ``flags``).

Flag values are the real ``PERF_AUX_FLAG_*`` constants from
``include/uapi/linux/perf_event.h``.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from repro.errors import PerfError
from repro.substrate.codec import register as _substrate

# perf_event_type values (uapi)
PERF_RECORD_LOST = 2
PERF_RECORD_EXIT = 4
PERF_RECORD_THROTTLE = 5
PERF_RECORD_UNTHROTTLE = 6
PERF_RECORD_AUX = 11
PERF_RECORD_ITRACE_START = 12

# PERF_AUX flags (uapi)
PERF_AUX_FLAG_TRUNCATED = 0x01
PERF_AUX_FLAG_OVERWRITE = 0x02
PERF_AUX_FLAG_PARTIAL = 0x04
PERF_AUX_FLAG_COLLISION = 0x08

_HEADER = struct.Struct("<IHH")
_AUX_PAYLOAD = struct.Struct("<QQQ")
_LOST_PAYLOAD = struct.Struct("<QQ")
_THROTTLE_PAYLOAD = struct.Struct("<QQQ")
_ITRACE_PAYLOAD = struct.Struct("<II")

HEADER_SIZE = _HEADER.size


@dataclass(frozen=True)
class RecordHeader:
    """The common 8-byte ``perf_event_header``."""

    type: int
    misc: int
    size: int

    def pack(self) -> bytes:
        return _HEADER.pack(self.type, self.misc, self.size)

    @staticmethod
    def unpack(buf: bytes | memoryview, offset: int = 0) -> "RecordHeader":
        t, m, s = _HEADER.unpack_from(buf, offset)
        if s < HEADER_SIZE:
            raise PerfError(f"record size {s} smaller than header")
        return RecordHeader(t, m, s)


@_substrate
@dataclass(frozen=True)
class AuxRecord:
    """``PERF_RECORD_AUX``: new data available in the aux buffer.

    ``aux_offset`` is a free-running byte offset (the consumer applies
    ``% aux_size`` when reading, as the real ABI requires), ``aux_size``
    the number of new bytes, ``flags`` the ``PERF_AUX_FLAG_*`` bits.
    """

    aux_offset: int
    aux_size: int
    flags: int = 0

    TYPE = PERF_RECORD_AUX

    @property
    def truncated(self) -> bool:
        return bool(self.flags & PERF_AUX_FLAG_TRUNCATED)

    @property
    def collision(self) -> bool:
        return bool(self.flags & PERF_AUX_FLAG_COLLISION)

    @property
    def partial(self) -> bool:
        return bool(self.flags & PERF_AUX_FLAG_PARTIAL)

    def pack(self) -> bytes:
        payload = _AUX_PAYLOAD.pack(self.aux_offset, self.aux_size, self.flags)
        hdr = RecordHeader(self.TYPE, 0, HEADER_SIZE + len(payload))
        return hdr.pack() + payload

    @staticmethod
    def unpack_payload(buf: bytes | memoryview, offset: int) -> "AuxRecord":
        o, s, f = _AUX_PAYLOAD.unpack_from(buf, offset)
        return AuxRecord(o, s, f)


@dataclass(frozen=True)
class LostRecord:
    """``PERF_RECORD_LOST``: ring-buffer records dropped by the kernel."""

    event_id: int
    lost: int

    TYPE = PERF_RECORD_LOST

    def pack(self) -> bytes:
        payload = _LOST_PAYLOAD.pack(self.event_id, self.lost)
        hdr = RecordHeader(self.TYPE, 0, HEADER_SIZE + len(payload))
        return hdr.pack() + payload

    @staticmethod
    def unpack_payload(buf: bytes | memoryview, offset: int) -> "LostRecord":
        i, l = _LOST_PAYLOAD.unpack_from(buf, offset)
        return LostRecord(i, l)


@dataclass(frozen=True)
class ThrottleRecord:
    """``PERF_RECORD_THROTTLE``/``UNTHROTTLE``: sampling rate limiting.

    The thread-count experiments (paper Fig. 11) count these to measure
    sampling throttling at high core counts.
    """

    time: int
    event_id: int
    stream_id: int
    throttled: bool = True

    def pack(self) -> bytes:
        payload = _THROTTLE_PAYLOAD.pack(self.time, self.event_id, self.stream_id)
        t = PERF_RECORD_THROTTLE if self.throttled else PERF_RECORD_UNTHROTTLE
        hdr = RecordHeader(t, 0, HEADER_SIZE + len(payload))
        return hdr.pack() + payload

    @staticmethod
    def unpack_payload(
        buf: bytes | memoryview, offset: int, throttled: bool
    ) -> "ThrottleRecord":
        t, e, s = _THROTTLE_PAYLOAD.unpack_from(buf, offset)
        return ThrottleRecord(t, e, s, throttled)


@dataclass(frozen=True)
class ItraceStartRecord:
    """``PERF_RECORD_ITRACE_START``: hardware trace began for pid/tid."""

    pid: int
    tid: int

    TYPE = PERF_RECORD_ITRACE_START

    def pack(self) -> bytes:
        payload = _ITRACE_PAYLOAD.pack(self.pid, self.tid)
        hdr = RecordHeader(self.TYPE, 0, HEADER_SIZE + len(payload))
        return hdr.pack() + payload

    @staticmethod
    def unpack_payload(buf: bytes | memoryview, offset: int) -> "ItraceStartRecord":
        p, t = _ITRACE_PAYLOAD.unpack_from(buf, offset)
        return ItraceStartRecord(p, t)


class AuxRecordBatch:
    """Columnar ``PERF_RECORD_AUX`` metadata (structure-of-arrays).

    The epoch-planned SPE driver posts one AUX record per watermark
    crossing; materialising an :class:`AuxRecord` dataclass per crossing
    dominated large feeds.  The batch keeps offsets/sizes/flags as
    uint64 columns and builds dataclass rows only on demand: iteration,
    indexing, and ``==`` against a plain record list all behave like the
    list of :class:`AuxRecord` they replace, so existing consumers keep
    working unchanged.
    """

    __slots__ = ("offsets", "sizes", "flags")

    def __init__(
        self,
        offsets: np.ndarray,
        sizes: np.ndarray,
        flags: np.ndarray,
    ) -> None:
        self.offsets = np.ascontiguousarray(offsets, dtype=np.uint64)
        self.sizes = np.ascontiguousarray(sizes, dtype=np.uint64)
        self.flags = np.ascontiguousarray(flags, dtype=np.uint64)
        if not (
            self.offsets.shape == self.sizes.shape == self.flags.shape
            and self.offsets.ndim == 1
        ):
            raise PerfError("offsets/sizes/flags must be equal-length 1-D")

    @classmethod
    def from_records(cls, records) -> "AuxRecordBatch":
        """Build a batch from an iterable of :class:`AuxRecord`."""
        rows = list(records)
        n = len(rows)
        return cls(
            np.fromiter((r.aux_offset for r in rows), np.uint64, count=n),
            np.fromiter((r.aux_size for r in rows), np.uint64, count=n),
            np.fromiter((r.flags for r in rows), np.uint64, count=n),
        )

    def __len__(self) -> int:
        return int(self.offsets.shape[0])

    def __getitem__(self, i):
        if isinstance(i, slice):
            return [self[j] for j in range(*i.indices(len(self)))]
        return AuxRecord(
            aux_offset=int(self.offsets[i]),
            aux_size=int(self.sizes[i]),
            flags=int(self.flags[i]),
        )

    def __iter__(self):
        for off, size, fl in zip(self.offsets, self.sizes, self.flags):
            yield AuxRecord(
                aux_offset=int(off), aux_size=int(size), flags=int(fl)
            )

    def __eq__(self, other) -> bool:
        # reflected: `list_of_AuxRecord == batch` lands here too, which
        # is how the reference/planned parity suite compares the paths
        if isinstance(other, AuxRecordBatch):
            return (
                len(self) == len(other)
                and bool((self.offsets == other.offsets).all())
                and bool((self.sizes == other.sizes).all())
                and bool((self.flags == other.flags).all())
            )
        if isinstance(other, (list, tuple)):
            return len(self) == len(other) and all(
                a == b for a, b in zip(self, other)
            )
        return NotImplemented

    def __add__(self, other) -> "AuxRecordBatch":
        tail = other if isinstance(other, AuxRecordBatch) else (
            self.from_records(other)
        )
        if not len(tail):
            return self
        return AuxRecordBatch(
            np.concatenate([self.offsets, tail.offsets]),
            np.concatenate([self.sizes, tail.sizes]),
            np.concatenate([self.flags, tail.flags]),
        )

    def __radd__(self, other) -> "AuxRecordBatch":
        head = self.from_records(other)
        return head + self if len(head) else self

    def __repr__(self) -> str:
        return f"AuxRecordBatch(n={len(self)})"


#: serialised size of one ``PERF_RECORD_AUX`` (header + 3 u64 fields)
AUX_RECORD_BYTES = HEADER_SIZE + _AUX_PAYLOAD.size


def pack_aux_records(
    offsets: np.ndarray, sizes: np.ndarray | int, flags: np.ndarray | int
) -> np.ndarray:
    """Serialise many ``PERF_RECORD_AUX`` records into an ``(n, 32)``
    uint8 matrix, byte-identical to ``AuxRecord(...).pack()`` per row.

    The epoch-planned SPE driver posts one AUX record per planned
    service point; packing them in one vectorised pass (and writing them
    with :meth:`RingBuffer.write_records_packed`) removes the per-wakeup
    ``struct.pack`` round-trips.
    """
    offsets = np.ascontiguousarray(offsets, dtype="<u8")
    n = offsets.shape[0]
    mat = np.zeros((n, AUX_RECORD_BYTES), dtype=np.uint8)
    # perf_event_header: type u32 = PERF_RECORD_AUX, misc u16 = 0, size u16
    mat[:, 0] = PERF_RECORD_AUX
    mat[:, 6] = AUX_RECORD_BYTES
    mat[:, 8:16] = offsets.view(np.uint8).reshape(n, 8)
    mat[:, 16:24] = (
        np.broadcast_to(np.asarray(sizes, dtype="<u8"), (n,))
        .astype("<u8")
        .view(np.uint8)
        .reshape(n, 8)
    )
    mat[:, 24:32] = (
        np.broadcast_to(np.asarray(flags, dtype="<u8"), (n,))
        .astype("<u8")
        .view(np.uint8)
        .reshape(n, 8)
    )
    return mat


Record = AuxRecord | LostRecord | ThrottleRecord | ItraceStartRecord


def parse_record(buf: bytes | memoryview, offset: int = 0) -> tuple[Record, int]:
    """Parse one record at ``offset``; returns (record, total_size).

    Unknown record types raise :class:`PerfError` — the simulated kernel
    never emits types it does not define.
    """
    hdr = RecordHeader.unpack(buf, offset)
    body = offset + HEADER_SIZE
    if hdr.type == PERF_RECORD_AUX:
        return AuxRecord.unpack_payload(buf, body), hdr.size
    if hdr.type == PERF_RECORD_LOST:
        return LostRecord.unpack_payload(buf, body), hdr.size
    if hdr.type == PERF_RECORD_THROTTLE:
        return ThrottleRecord.unpack_payload(buf, body, True), hdr.size
    if hdr.type == PERF_RECORD_UNTHROTTLE:
        return ThrottleRecord.unpack_payload(buf, body, False), hdr.size
    if hdr.type == PERF_RECORD_ITRACE_START:
        return ItraceStartRecord.unpack_payload(buf, body), hdr.size
    raise PerfError(f"unknown record type {hdr.type}")
