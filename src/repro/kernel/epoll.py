"""epoll-style readiness monitoring over simulated perf events.

NMO "uses epoll to monitor incoming updates to the ring buffer"
(paper §IV-A).  In the simulation, readiness is level-triggered off each
event's ring-buffer state; :meth:`Epoll.wait` returns the ready perf
events, and the profiler drains them exactly as the real monitor thread
would.
"""

from __future__ import annotations

from repro.errors import PerfError
from repro.kernel.perf_event import PerfEvent

EPOLLIN = 0x001


class Epoll:
    """Level-triggered readiness set over :class:`PerfEvent` objects."""

    def __init__(self) -> None:
        self._interest: dict[int, tuple[PerfEvent, int]] = {}

    def register(self, ev: PerfEvent, events: int = EPOLLIN) -> None:
        if ev.fd in self._interest:
            raise PerfError(f"fd {ev.fd} already registered", "EEXIST")
        if not events & EPOLLIN:
            raise PerfError("only EPOLLIN interest is modelled", "EINVAL")
        self._interest[ev.fd] = (ev, events)

    def unregister(self, ev: PerfEvent) -> None:
        if ev.fd not in self._interest:
            raise PerfError(f"fd {ev.fd} not registered", "ENOENT")
        del self._interest[ev.fd]

    def wait(self) -> list[PerfEvent]:
        """Return the currently-readable events (no blocking: the
        simulation advances virtual time explicitly elsewhere)."""
        return [ev for ev, _m in self._interest.values() if ev.readable]

    @property
    def n_registered(self) -> int:
        return len(self._interest)

    def __contains__(self, ev: PerfEvent) -> bool:
        return ev.fd in self._interest
