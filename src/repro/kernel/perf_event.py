"""Simulated ``perf_event_open`` and the PMU registry.

NMO opens ARM SPE by passing an attribute struct whose ``type`` is the
dynamic PMU number of the SPE device — ``0x2c`` on the paper's testbed —
and whose ``config`` carries the SPE filter bits (paper §IV-A).  This
module reproduces that control path:

* :class:`PerfEventAttr` — the subset of ``perf_event_attr`` NMO uses,
* :class:`PerfEvent` — the "file descriptor": ring/aux mmap, ioctls,
  counter reads,
* :class:`PerfSubsystem` — per-machine syscall surface and fd table.

Validation mirrors the kernel's error behaviour (``ENOENT`` for an
unknown PMU type, ``EINVAL`` for bad buffer sizes) so NMO's error paths
can be exercised in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cpu.clock import DEFAULT_CNTFRQ_HZ, calc_mult_shift
from repro.errors import PerfError
from repro.kernel.aux_buffer import AuxBuffer
from repro.kernel.counters import CounterEvent, PmuCounter
from repro.kernel.ring_buffer import RingBuffer
from repro.machine.spec import MachineSpec

# Static perf type numbers (uapi)
PERF_TYPE_HARDWARE = 0
PERF_TYPE_SOFTWARE = 1
PERF_TYPE_RAW = 4

#: Dynamic PMU type of the ARM SPE device on the paper's testbed (§IV-A:
#: "The type field is set to the hex value 0x2c").
ARM_SPE_PMU_TYPE = 0x2C

# ioctl request numbers (uapi values, truncated to the ones NMO uses)
PERF_EVENT_IOC_ENABLE = 0x2400
PERF_EVENT_IOC_DISABLE = 0x2401
PERF_EVENT_IOC_RESET = 0x2403


@dataclass
class PerfEventAttr:
    """The fields of ``perf_event_attr`` used by NMO."""

    type: int
    config: int = 0
    sample_period: int = 0
    aux_watermark: int = 0
    disabled: bool = True
    exclude_kernel: bool = True
    #: counting-event selector for PERF_TYPE_HARDWARE/RAW opens
    counter_event: CounterEvent | None = None

    def validate(self) -> None:
        if self.type < 0:
            raise PerfError("negative attr.type")
        if self.sample_period < 0:
            raise PerfError("negative sample_period")
        if self.aux_watermark < 0:
            raise PerfError("negative aux_watermark")


class PerfEvent:
    """An open perf event: the object behind the returned fd."""

    def __init__(self, fd: int, attr: PerfEventAttr, pid: int, cpu: int,
                 machine: MachineSpec) -> None:
        self.fd = fd
        self.attr = attr
        self.pid = pid
        self.cpu = cpu
        self.machine = machine
        self.enabled = not attr.disabled
        self.ring: RingBuffer | None = None
        self.aux: AuxBuffer | None = None
        self.counter = PmuCounter(attr.counter_event) if attr.counter_event else None
        #: number of wakeups delivered (poll/epoll edge count)
        self.wakeups = 0

    # -- mmap ---------------------------------------------------------------------

    def mmap_ring(self, n_pages: int) -> RingBuffer:
        """Map the (N+1)-page ring: page 0 metadata + N data pages.

        ``n_pages`` counts the *data* pages (the paper's "ring buffer of
        (N+1) pages" with N data pages); it must be a power of two, as the
        kernel requires.
        """
        if self.ring is not None:
            raise PerfError("ring buffer already mapped", "EBUSY")
        if n_pages <= 0 or n_pages & (n_pages - 1):
            raise PerfError(
                f"ring data pages must be a power of two, got {n_pages}"
            )
        self.ring = RingBuffer(n_pages=n_pages, page_size=self.machine.page_size)
        # publish timescale conversion parameters for the SPE timestamps
        mult, shift = calc_mult_shift(DEFAULT_CNTFRQ_HZ)
        self.ring.meta.time_mult = mult
        self.ring.meta.time_shift = shift
        self.ring.meta.time_zero = 0
        return self.ring

    def mmap_aux(self, n_pages: int) -> AuxBuffer:
        """Map the SPE aux area; requires the ring to exist (real ABI)."""
        if self.ring is None:
            raise PerfError("aux area requires the ring buffer first", "EINVAL")
        if self.aux is not None:
            raise PerfError("aux buffer already mapped", "EBUSY")
        if n_pages <= 0 or n_pages & (n_pages - 1):
            raise PerfError(
                f"aux pages must be a power of two, got {n_pages}"
            )
        watermark = self.attr.aux_watermark or None
        self.aux = AuxBuffer(
            n_pages=n_pages, page_size=self.machine.page_size, watermark=watermark
        )
        self.ring.meta.aux_offset = (1 + self.ring.n_pages) * self.machine.page_size
        self.ring.meta.aux_size = self.aux.size
        return self.aux

    # -- ioctl / read ----------------------------------------------------------------

    def ioctl(self, request: int) -> None:
        if request == PERF_EVENT_IOC_ENABLE:
            self.enabled = True
        elif request == PERF_EVENT_IOC_DISABLE:
            self.enabled = False
        elif request == PERF_EVENT_IOC_RESET:
            if self.counter is not None:
                self.counter.reset()
        else:
            raise PerfError(f"unsupported ioctl 0x{request:x}", "ENOTTY")

    def read(self) -> int:
        """Read the counter value (counting events only)."""
        if self.counter is None:
            raise PerfError("read() on a sampling event", "EINVAL")
        return self.counter.value

    def count(self, n: int) -> None:
        """Kernel-side increment helper for counting events."""
        if self.counter is not None and self.enabled:
            self.counter.add(n)

    @property
    def readable(self) -> bool:
        """poll()/epoll readiness: unread data in the ring buffer."""
        return self.ring is not None and self.ring.readable

    @property
    def is_spe(self) -> bool:
        return self.attr.type == ARM_SPE_PMU_TYPE


class PerfSubsystem:
    """Per-machine perf syscall surface (fd table + PMU registry)."""

    def __init__(self, machine: MachineSpec) -> None:
        self.machine = machine
        self._next_fd = 3  # 0/1/2 are stdio, as on a real process
        self.events: dict[int, PerfEvent] = {}

    def perf_event_open(
        self, attr: PerfEventAttr, pid: int = 0, cpu: int = -1
    ) -> PerfEvent:
        """Open an event; raises :class:`PerfError` like the syscall fails.

        SPE events must be opened per-CPU (``cpu >= 0``) with a sampling
        period, and only exist on machines whose PMU advertises SPE.
        """
        attr.validate()
        if attr.type == ARM_SPE_PMU_TYPE:
            if not self.machine.has_spe:
                raise PerfError("no SPE PMU on this machine", "ENOENT")
            if cpu < 0:
                raise PerfError("SPE events are per-CPU; need cpu >= 0", "EINVAL")
            if cpu >= self.machine.n_cores:
                raise PerfError(f"cpu {cpu} beyond machine cores", "EINVAL")
            if attr.sample_period <= 0:
                raise PerfError("SPE requires a positive sample_period", "EINVAL")
        elif attr.type in (PERF_TYPE_HARDWARE, PERF_TYPE_RAW):
            if attr.counter_event is None:
                raise PerfError("counting event needs counter_event", "EINVAL")
        else:
            raise PerfError(f"unknown PMU type 0x{attr.type:x}", "ENOENT")
        ev = PerfEvent(self._next_fd, attr, pid, cpu, self.machine)
        self.events[ev.fd] = ev
        self._next_fd += 1
        return ev

    def close(self, ev: PerfEvent) -> None:
        if ev.fd not in self.events:
            raise PerfError(f"double close of fd {ev.fd}", "EBADF")
        del self.events[ev.fd]

    def spe_events(self) -> list[PerfEvent]:
        return [e for e in self.events.values() if e.is_spe]
