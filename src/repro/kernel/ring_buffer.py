"""The perf mmap ring buffer and its metadata page.

NMO maps ``(N+1)`` pages per event: page 0 is a ``perf_event_mmap_page``
metadata page, pages 1..N the data area written by the kernel and read by
the profiler in a producer/consumer protocol (paper §IV-A).  The metadata
page also carries ``time_zero`` / ``time_shift`` / ``time_mult`` which NMO
uses to convert SPE timestamps into the perf timescale.

``data_head`` and ``aux_head`` are free-running byte counters: readers
take ``head % size`` for the wrap position and publish consumption by
advancing ``data_tail``/``aux_tail``, exactly like the real ABI.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import BufferError_
from repro.kernel.records import HEADER_SIZE, LostRecord, Record, parse_record


@dataclass
class MmapMetadataPage:
    """Simulated ``perf_event_mmap_page`` (the fields NMO reads)."""

    data_offset: int = 0
    data_size: int = 0
    data_head: int = 0
    data_tail: int = 0
    aux_offset: int = 0
    aux_size: int = 0
    aux_head: int = 0
    aux_tail: int = 0
    time_zero: int = 0
    time_mult: int = 1
    time_shift: int = 0
    cap_user_time_zero: int = 1


@dataclass
class RingBuffer:
    """Byte-accurate perf data ring of ``n_pages`` pages.

    The producer (simulated kernel) appends serialised records with
    :meth:`write_record`; when there is no room the record is dropped and
    accounted, and a ``PERF_RECORD_LOST`` is emitted once space returns —
    mirroring perf's behaviour under slow consumers.
    """

    n_pages: int
    page_size: int
    meta: MmapMetadataPage = field(default_factory=MmapMetadataPage)

    def __post_init__(self) -> None:
        if self.n_pages <= 0:
            raise BufferError_(f"ring buffer needs >= 1 data page, got {self.n_pages}")
        if self.page_size <= 0 or self.page_size & (self.page_size - 1):
            raise BufferError_("page size must be a positive power of two")
        self.size = self.n_pages * self.page_size
        self._buf = np.zeros(self.size, dtype=np.uint8)
        self.meta.data_offset = self.page_size
        self.meta.data_size = self.size
        self.records_written = 0
        self.records_lost = 0
        self._pending_lost = 0

    # -- producer side -----------------------------------------------------------

    @property
    def used(self) -> int:
        return self.meta.data_head - self.meta.data_tail

    @property
    def free(self) -> int:
        return self.size - self.used

    def write_record(self, rec: Record) -> bool:
        """Append one record; False (and a lost count) if it did not fit."""
        payload = rec.pack()
        # flush a LOST record first if drops happened earlier
        if self._pending_lost:
            lost = LostRecord(event_id=0, lost=self._pending_lost).pack()
            if len(lost) + len(payload) <= self.free:
                self._write_bytes(lost)
                self._pending_lost = 0
        if len(payload) > self.free:
            self.records_lost += 1
            self._pending_lost += 1
            return False
        self._write_bytes(payload)
        self.records_written += 1
        return True

    def write_records_packed(self, packed: np.ndarray) -> int:
        """Append ``packed`` (an ``(n, rec_size)`` uint8 matrix of
        pre-serialised equal-size records) with the exact semantics of
        ``n`` sequential :meth:`write_record` calls: the pending-LOST
        flush can only succeed on the first write (nothing frees space
        mid-batch), then records fit until ``free`` runs out and every
        later one is dropped and counted.  One wrapped copy instead of a
        Python loop; returns the number of records written.
        """
        packed = np.asarray(packed, dtype=np.uint8)
        n_rec, rec_size = packed.shape
        if n_rec == 0:
            return 0
        if self._pending_lost:
            lost = LostRecord(event_id=0, lost=self._pending_lost).pack()
            if len(lost) + rec_size <= self.free:
                self._write_bytes(lost)
                self._pending_lost = 0
        n_fit = min(n_rec, self.free // rec_size) if rec_size else n_rec
        if n_fit:
            self._write_bytes(packed[:n_fit].reshape(-1))
            self.records_written += n_fit
        dropped = n_rec - n_fit
        if dropped:
            self.records_lost += dropped
            self._pending_lost += dropped
        return n_fit

    def _write_bytes(self, payload: bytes | np.ndarray) -> None:
        arr = (
            np.frombuffer(payload, dtype=np.uint8)
            if isinstance(payload, (bytes, bytearray, memoryview))
            else np.asarray(payload, dtype=np.uint8)
        )
        pos = self.meta.data_head % self.size
        n = int(arr.shape[0])
        first = min(n, self.size - pos)
        self._buf[pos : pos + first] = arr[:first]
        if first < n:
            self._buf[: n - first] = arr[first:]
        self.meta.data_head += n

    # -- consumer side -----------------------------------------------------------

    def peek_bytes(self, offset: int, n: int) -> bytes:
        """Read ``n`` bytes at free-running offset ``offset`` (wrapping)."""
        if n < 0:
            raise BufferError_("cannot read negative length")
        pos = offset % self.size
        first = min(n, self.size - pos)
        out = bytearray(n)
        out[:first] = self._buf[pos : pos + first].tobytes()
        if first < n:
            out[first:] = self._buf[: n - first].tobytes()
        return bytes(out)

    def read_records(self, limit: int | None = None) -> list[Record]:
        """Drain complete records between tail and head, advancing tail."""
        out: list[Record] = []
        while self.meta.data_tail < self.meta.data_head:
            if limit is not None and len(out) >= limit:
                break
            avail = self.meta.data_head - self.meta.data_tail
            if avail < HEADER_SIZE:
                raise BufferError_("torn record header in ring buffer")
            # headers are small; pull a bounded window to parse from
            window = self.peek_bytes(self.meta.data_tail, min(avail, 64))
            rec, size = parse_record(window, 0)
            if size > avail:
                raise BufferError_("torn record body in ring buffer")
            out.append(rec)
            self.meta.data_tail += size
        return out

    @property
    def readable(self) -> bool:
        return self.meta.data_head > self.meta.data_tail
