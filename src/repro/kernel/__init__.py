"""Simulated Linux perf substrate: syscalls, ring/aux buffers, counters."""

from repro.kernel.aux_buffer import AuxBuffer
from repro.kernel.counters import (
    CounterEvent,
    CounterGroup,
    IntervalSeries,
    PmuCounter,
)
from repro.kernel.epoll import EPOLLIN, Epoll
from repro.kernel.perf_event import (
    ARM_SPE_PMU_TYPE,
    PERF_EVENT_IOC_DISABLE,
    PERF_EVENT_IOC_ENABLE,
    PERF_EVENT_IOC_RESET,
    PERF_TYPE_HARDWARE,
    PERF_TYPE_RAW,
    PerfEvent,
    PerfEventAttr,
    PerfSubsystem,
)
from repro.kernel.records import (
    PERF_AUX_FLAG_COLLISION,
    PERF_AUX_FLAG_PARTIAL,
    PERF_AUX_FLAG_TRUNCATED,
    PERF_RECORD_AUX,
    PERF_RECORD_ITRACE_START,
    PERF_RECORD_LOST,
    PERF_RECORD_THROTTLE,
    AuxRecord,
    AuxRecordBatch,
    ItraceStartRecord,
    LostRecord,
    RecordHeader,
    ThrottleRecord,
    parse_record,
)
from repro.kernel.ring_buffer import MmapMetadataPage, RingBuffer

__all__ = [
    "ARM_SPE_PMU_TYPE",
    "AuxBuffer",
    "AuxRecord",
    "AuxRecordBatch",
    "CounterEvent",
    "CounterGroup",
    "EPOLLIN",
    "Epoll",
    "IntervalSeries",
    "ItraceStartRecord",
    "LostRecord",
    "MmapMetadataPage",
    "PERF_AUX_FLAG_COLLISION",
    "PERF_AUX_FLAG_PARTIAL",
    "PERF_AUX_FLAG_TRUNCATED",
    "PERF_EVENT_IOC_DISABLE",
    "PERF_EVENT_IOC_ENABLE",
    "PERF_EVENT_IOC_RESET",
    "PERF_RECORD_AUX",
    "PERF_RECORD_ITRACE_START",
    "PERF_RECORD_LOST",
    "PERF_RECORD_THROTTLE",
    "PERF_TYPE_HARDWARE",
    "PERF_TYPE_RAW",
    "PerfEvent",
    "PerfEventAttr",
    "PerfSubsystem",
    "PmuCounter",
    "RecordHeader",
    "RingBuffer",
    "ThrottleRecord",
    "parse_record",
]
