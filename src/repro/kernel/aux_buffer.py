"""The SPE aux buffer.

ARM SPE does not write samples into the perf data ring; it streams packed
sample records into a separate mmap'd **aux buffer** and the kernel posts
``PERF_RECORD_AUX`` metadata (offset/size/flags) into the data ring each
time the configured ``aux_watermark`` worth of new bytes is available
(paper §II-A and §IV-A).  The size of this buffer is the central knob of
the paper's Fig. 9: it sets the interrupt frequency (time overhead) and
the headroom before samples are dropped (accuracy).

The buffer is byte-accurate: SPE's 64-byte sample records are copied in
and read back out; head/tail are free-running counters like the real ABI.
"""

from __future__ import annotations

import numpy as np

from repro.errors import BufferError_


class AuxBuffer:
    """Byte ring written by the SPE "hardware", drained by the profiler."""

    def __init__(self, n_pages: int, page_size: int, watermark: int | None = None) -> None:
        if n_pages <= 0:
            raise BufferError_(f"aux buffer needs >= 1 page, got {n_pages}")
        if page_size <= 0 or page_size & (page_size - 1):
            raise BufferError_("page size must be a positive power of two")
        self.n_pages = n_pages
        self.page_size = page_size
        self.size = n_pages * page_size
        #: bytes of new data per PERF_RECORD_AUX; defaults to half the buffer
        self.watermark = watermark if watermark is not None else max(1, self.size // 2)
        if not 0 < self.watermark <= self.size:
            raise BufferError_(
                f"watermark {self.watermark} must be in (0, {self.size}]"
            )
        self._buf = np.zeros(self.size, dtype=np.uint8)
        self.head = 0  # free-running producer offset
        self.tail = 0  # free-running consumer offset
        self._last_signal = 0  # head value at the last watermark crossing
        self.bytes_written = 0
        self.bytes_dropped = 0

    # -- producer (SPE) -----------------------------------------------------------

    @property
    def used(self) -> int:
        return self.head - self.tail

    @property
    def free(self) -> int:
        return self.size - self.used

    def write(self, data: bytes | np.ndarray) -> int:
        """Append sample bytes; returns bytes accepted.

        Accepts ``bytes`` or a uint8 ndarray (views are written without
        an intermediate copy).  Bytes beyond the free space are dropped
        (SPE raises a buffer-full event and discards in hardware);
        callers learn about the loss via the return value and
        :attr:`bytes_dropped`.
        """
        arr = (
            np.frombuffer(data, dtype=np.uint8)
            if isinstance(data, (bytes, bytearray, memoryview))
            else np.asarray(data, dtype=np.uint8)
        )
        n = int(arr.shape[0])
        accept = min(n, self.free)
        if accept:
            pos = self.head % self.size
            first = min(accept, self.size - pos)
            self._buf[pos : pos + first] = arr[:first]
            if first < accept:
                self._buf[: accept - first] = arr[first : accept]
            self.head += accept
            self.bytes_written += accept
        if accept < n:
            self.bytes_dropped += n - accept
        return accept

    @property
    def signal_base(self) -> int:
        """Free-running offset where the next AUX signal would start."""
        return max(self._last_signal, self.tail)

    def pending_signal(self) -> int:
        """Bytes accumulated since the last watermark notification.

        Clamped to the live region ``[tail, head]``: a consumer that
        drains past the last signalled offset (NMO's end-of-run flush
        does) frees those bytes, so they must not be announced again.
        """
        return self.head - max(self._last_signal, self.tail)

    def should_signal(self) -> bool:
        """True when >= watermark new bytes are available to announce."""
        return self.pending_signal() >= self.watermark

    def take_signal(self) -> tuple[int, int]:
        """Consume the pending notification; returns (aux_offset, aux_size).

        These are the fields of the ``PERF_RECORD_AUX`` the kernel posts.
        The signalled region is clamped to ``[tail, head]`` so a drain
        that overtook the last signal never yields an offset into
        already-freed bytes (the follow-up ``read`` would raise).
        """
        offset = max(self._last_signal, self.tail)
        size = self.head - offset
        if size <= 0:
            raise BufferError_("no pending aux data to signal")
        self._last_signal = self.head
        return offset, size

    # -- bulk producer/consumer (epoch-planned driver) ---------------------------

    def stream_paced(
        self,
        data: np.ndarray,
        n_drains: int,
        drain_bytes: int,
        return_signals: bool = True,
    ) -> list[tuple[int, int]]:
        """Append ``data`` as if written incrementally with a consumer
        fully draining ``drain_bytes`` at each of ``n_drains`` paced
        service points (``take_signal`` + ``advance_tail`` each time).

        Byte-identical end state to the incremental write/drain loop as
        long as the paced drains keep the ring from overflowing: no byte
        is ever dropped, every byte ``i`` lands at ``(head + i) % size``,
        and the final buffer content is simply the last ``size`` bytes of
        the stream laid down circularly.  A schedule whose in-flight
        occupancy would exceed the buffer (where the incremental path
        would start dropping) is rejected with :class:`BufferError_`
        rather than silently corrupting the ring.  Returns the
        ``(aux_offset, aux_size)`` pair of each drain — the fields of the
        ``PERF_RECORD_AUX`` records the kernel would have posted.

        Large schedules should pass ``return_signals=False`` (the list
        is ``[]``): every pair is ``(signal_base + k*drain_bytes,
        drain_bytes)``, so callers posting many signals compute them as
        one ``arange`` instead of paying a Python tuple per drain.
        """
        arr = np.asarray(data, dtype=np.uint8)
        total = int(arr.shape[0])
        base = max(self._last_signal, self.tail)
        drained = n_drains * drain_bytes
        if n_drains < 0:
            raise BufferError_("need n_drains >= 0")
        if n_drains and not 0 < drain_bytes <= self.size:
            raise BufferError_(
                f"paced drain of {drain_bytes} outside (0, {self.size}]"
            )
        if drained > (self.head - base) + total:
            raise BufferError_(
                f"cannot drain {drained} bytes: only "
                f"{self.head - base + total} flow through this stream"
            )
        # peak in-flight occupancy: just before each drain the ring holds
        # the undrained prefix plus one drain's worth; after the last
        # drain it fills monotonically to the final level
        final_used = (self.head + total) - (base + drained if n_drains else self.tail)
        pre_drain_used = (base - self.tail) + drain_bytes if n_drains else 0
        if max(final_used, pre_drain_used) > self.size:
            raise BufferError_(
                f"paced stream would overflow the ring: peak occupancy "
                f"{max(final_used, pre_drain_used)} > size {self.size} "
                f"(the incremental path would drop bytes here)"
            )
        if total:
            start = (self.head + max(0, total - self.size)) % self.size
            last = arr[-self.size :] if total > self.size else arr
            m = last.shape[0]
            first = min(m, self.size - start)
            self._buf[start : start + first] = last[:first]
            if first < m:
                self._buf[: m - first] = last[first:]
            self.head += total
            self.bytes_written += total
        signals = (
            [(base + k * drain_bytes, drain_bytes) for k in range(n_drains)]
            if return_signals
            else []
        )
        if n_drains:
            self._last_signal = base + drained
            self.tail = base + drained
        return signals

    # -- consumer (profiler) ---------------------------------------------------------

    def read(self, offset: int, n: int) -> bytes:
        """Copy ``n`` bytes at free-running ``offset`` (wrapping read)."""
        return self.read_view(offset, n).tobytes()

    def read_view(self, offset: int, n: int) -> np.ndarray:
        """Like :meth:`read` but returns a uint8 ndarray — a copy-free
        view into the ring when the span does not wrap.  The view aliases
        the buffer: decode or copy it before the producer writes again.
        """
        if n < 0:
            raise BufferError_("cannot read negative length")
        if offset < self.tail or offset + n > self.head:
            raise BufferError_(
                f"read [{offset}, {offset + n}) outside live data "
                f"[{self.tail}, {self.head})"
            )
        pos = offset % self.size
        first = min(n, self.size - pos)
        if first == n:
            return self._buf[pos : pos + n]
        return np.concatenate([self._buf[pos:], self._buf[: n - first]])

    def read_chunks(self, offset: int, n: int, max_bytes: int = 1 << 20):
        """Yield ``[offset, offset+n)`` as contiguous zero-copy views.

        The streaming counterpart of :meth:`read_view`: a wrapping span
        never concatenates — the wrap point (and the ``max_bytes`` cap)
        simply ends a chunk, so draining a span costs no allocation
        proportional to its size.  Views alias the ring: decode or copy
        each before the producer writes again.  Feed the chunks to
        :func:`repro.spe.packets.decode_stream` to decode a span without
        materialising it.
        """
        if n < 0:
            raise BufferError_("cannot read negative length")
        if max_bytes <= 0:
            raise BufferError_("chunk size must be positive")
        if offset < self.tail or offset + n > self.head:
            raise BufferError_(
                f"read [{offset}, {offset + n}) outside live data "
                f"[{self.tail}, {self.head})"
            )

        def _chunks(at: int = offset, end: int = offset + n):
            while at < end:
                pos = at % self.size
                take = min(end - at, self.size - pos, max_bytes)
                yield self._buf[pos : pos + take]
                at += take

        return _chunks()

    def advance_tail(self, new_tail: int) -> None:
        """Publish consumption up to ``new_tail`` (frees producer space)."""
        if new_tail < self.tail or new_tail > self.head:
            raise BufferError_(
                f"tail {new_tail} outside [{self.tail}, {self.head}]"
            )
        self.tail = new_tail
