"""PMU counting events.

Besides SPE sampling, NMO reads classic counting events:

* ``mem_access`` — retired loads+stores; the ground truth of the paper's
  accuracy metric (Eq. 1 baseline run with ``perf stat``),
* ``bus_access`` — bus/DRAM transfer events, the basis of the temporal
  bandwidth view (Fig. 3: events x line size / interval),
* FP ops — combined with bandwidth into arithmetic intensity (Roofline),
* cycles / instructions.

Counters accumulate from workload execution summaries; interval counters
additionally keep a per-interval time series (1-second buckets by
default), which is what the temporal views plot.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.errors import PerfError


class CounterEvent(enum.Enum):
    """The PMU events NMO knows how to program."""

    CYCLES = "cycles"
    INSTRUCTIONS = "inst_retired"
    MEM_ACCESS = "mem_access"
    BUS_ACCESS = "bus_access"
    FP_OPS = "fp_spec"
    L2_REFILL = "l2d_cache_refill"


@dataclass
class PmuCounter:
    """One free-running counting event."""

    event: CounterEvent
    value: int = 0
    enabled: bool = True

    def add(self, n: int) -> None:
        if n < 0:
            raise PerfError(f"counter increments must be >= 0, got {n}")
        if self.enabled:
            self.value += n

    def reset(self) -> None:
        self.value = 0


@dataclass
class IntervalSeries:
    """Per-interval accumulation of one event (temporal profiling).

    Samples are binned into fixed-width wall-clock intervals; the series
    grows on demand so callers can feed events in any time order.
    """

    interval_s: float = 1.0
    _bins: dict[int, float] = field(default_factory=dict)

    def add(self, t_seconds: float, amount: float) -> None:
        if t_seconds < 0:
            raise PerfError("negative timestamp")
        if amount < 0:
            raise PerfError("negative amount")
        b = int(t_seconds // self.interval_s)
        self._bins[b] = self._bins.get(b, 0.0) + amount

    def add_many(self, t_seconds: np.ndarray, amounts: np.ndarray | float) -> None:
        t = np.asarray(t_seconds, dtype=np.float64)
        a = np.broadcast_to(np.asarray(amounts, dtype=np.float64), t.shape)
        if (t < 0).any():
            raise PerfError("negative timestamp")
        bins = (t // self.interval_s).astype(np.int64)
        uniq, inv = np.unique(bins, return_inverse=True)
        sums = np.bincount(inv, weights=a)
        for b, s in zip(uniq.tolist(), sums.tolist()):
            self._bins[b] = self._bins.get(b, 0.0) + s

    def series(self, until_s: float | None = None) -> tuple[np.ndarray, np.ndarray]:
        """Return (interval start times, per-interval totals), zero-filled."""
        if not self._bins and until_s is None:
            return np.zeros(0), np.zeros(0)
        last = max(self._bins) if self._bins else 0
        if until_s is not None:
            last = max(last, int(until_s // self.interval_s))
        idx = np.arange(last + 1)
        vals = np.array([self._bins.get(int(i), 0.0) for i in idx])
        return idx * self.interval_s, vals

    def rate_series(self, until_s: float | None = None) -> tuple[np.ndarray, np.ndarray]:
        """Per-interval totals divided by interval width (events/second)."""
        t, v = self.series(until_s)
        return t, v / self.interval_s

    @property
    def total(self) -> float:
        return float(sum(self._bins.values()))


class CounterGroup:
    """A ``perf stat``-style set of counters read/reset together."""

    def __init__(self, events: list[CounterEvent]) -> None:
        if not events:
            raise PerfError("counter group needs at least one event")
        if len(set(events)) != len(events):
            raise PerfError("duplicate events in counter group")
        self._counters = {e: PmuCounter(e) for e in events}

    def __contains__(self, event: CounterEvent) -> bool:
        return event in self._counters

    def add(self, event: CounterEvent, n: int) -> None:
        try:
            self._counters[event].add(n)
        except KeyError:
            raise PerfError(f"event {event} not in group") from None

    def read(self) -> dict[CounterEvent, int]:
        return {e: c.value for e, c in self._counters.items()}

    def __getitem__(self, event: CounterEvent) -> int:
        try:
            return self._counters[event].value
        except KeyError:
            raise PerfError(f"event {event} not in group") from None

    def reset(self) -> None:
        for c in self._counters.values():
            c.reset()

    def enable(self, on: bool = True) -> None:
        for c in self._counters.values():
            c.enabled = on
