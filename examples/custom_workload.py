#!/usr/bin/env python3
"""Bring your own workload: NMO's extensibility in one file.

The paper positions NMO as a framework ("researchers and developers ...
advanced memory-centric analysis ... using a simple interface").  This
example defines a *new* workload — a two-phase key-value store with a
hot/cold skew — registers it, profiles it with SPE sampling, and uses
the region view to find the hot structure, exactly the workflow §III
describes.

Run:  python examples/custom_workload.py
"""

import numpy as np

from repro.analysis.plotting import table
from repro.machine import AccessClass, MiB, ampere_altra_max
from repro.nmo import NmoMode, NmoProfiler, NmoSettings, RegionProfile
from repro.workloads import (
    Phase,
    Workload,
    random_in,
    register_workload,
    sequential,
    weighted_mix,
)


class KvStoreWorkload(Workload):
    """A lookup-heavy KV store: hot index + cold value log."""

    name = "kvstore"

    def _build(self) -> None:
        index_bytes = 8 * MiB        # hash index: hot, cache-friendly
        log_bytes = 512 * MiB        # value log: cold, random reads
        index = self.alloc_object("index", index_bytes)
        log = self.alloc_object("value_log", log_bytes)
        t = self.n_threads

        # phase 1: bulk load (sequential writes to the log)
        self.add_phase(
            Phase(
                name="bulk_load",
                n_mem_ops=2_000_000 // t,
                cpi=0.6,
                addr_fn=sequential(log, log_bytes // 8, 8, n_threads=t),
                store_fraction=1.0,
                classes=[AccessClass(footprint=log_bytes // t, stride=8)],
                touch={"index": index_bytes, "value_log": log_bytes},
                tag="load",
            )
        )
        # phase 2: query mix (hot index lookups + cold log reads)
        self.add_phase(
            Phase(
                name="queries",
                n_mem_ops=6_000_000 // t,
                cpi=0.8,
                addr_fn=weighted_mix(
                    [
                        (random_in(index, index_bytes // 8, 8, salt=1), 0.8),
                        (random_in(log, log_bytes // 8, 8, salt=2), 0.2),
                    ],
                    salt=3,
                ),
                store_fraction=0.05,
                classes=[
                    AccessClass(footprint=index_bytes, stride=0, weight=0.8),
                    AccessClass(footprint=log_bytes, stride=0, weight=0.2),
                ],
                # the index/log are shared read-mostly structures: the
                # SLC holds one copy regardless of thread count
                slc_sharers=1,
                tag="serve",
            )
        )
        self.finalise_dram_pressure()


def main() -> None:
    register_workload(KvStoreWorkload)

    machine = ampere_altra_max()
    w = KvStoreWorkload(machine, n_threads=16)
    settings = NmoSettings(enable=True, mode=NmoMode.SAMPLING, period=2048)
    result = NmoProfiler(w, settings).run()

    prof = RegionProfile.build(result)
    rows = [
        [
            s.name,
            s.n_samples,
            f"{s.n_loads / max(s.n_samples, 1):.0%}",
            f"{s.line_coverage:.1%}",
        ]
        for s in prof.hottest(5)
    ]
    print(
        table(
            ["object", "samples", "load share", "line coverage"],
            rows,
            title="KV store region profile",
        )
    )

    from repro.machine.hierarchy import MemLevel

    dram_share = (result.batch.level == int(MemLevel.DRAM)).mean()
    print(f"\noverall DRAM share of sampled accesses: {dram_share:.1%}")
    idx = prof.stats["index"]
    log = prof.stats["value_log"]
    print(
        f"access split: index {idx.n_samples} samples vs value_log "
        f"{log.n_samples} — the 8 MiB index absorbs most traffic while "
        f"the 512 MiB log sees sparse coverage "
        f"({log.line_coverage:.2%} of its lines)."
    )
    print(
        "\nOptimisation lead: the index is the hot object (pin it, "
        "keep it SLC-resident); the log's sparse random reads are the "
        "DRAM-latency exposure — candidates for compression or tiering "
        "(the paper's memory-region workflow, Section III-A)."
    )


if __name__ == "__main__":
    main()
