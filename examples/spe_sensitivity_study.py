#!/usr/bin/env python3
"""SPE sensitivity study: the paper's §VII experiment in miniature.

Sweeps the sampling period over STREAM / CFD / BFS and prints accuracy,
overhead, and collision curves — a scaled-down rendition of Figs. 7-8.
Use this script as the template for studying your own workload's
tolerance to SPE sampling parameters.

Run:  python examples/spe_sensitivity_study.py
"""

from repro.analysis.plotting import line_plot, table
from repro.evalharness import fig8_accuracy_overhead_collisions

PERIODS = (1000, 2000, 4000, 8000, 32000)
SCALES = {"stream": 1 / 64, "cfd": 1 / 512, "bfs": 0.25}


def main() -> None:
    results = {}
    for name, scale in SCALES.items():
        print(f"sweeping {name} (scale {scale:g}) ...")
        results.update(
            fig8_accuracy_overhead_collisions(
                periods=PERIODS, trials=2, workloads=(name,), scale=scale
            )
        )

    rows = []
    for name, pts in results.items():
        for p in pts:
            rows.append(
                [
                    name,
                    p.period,
                    f"{p.accuracy_mean:.1%}",
                    f"{p.overhead_mean:.2%}",
                    f"{p.collisions_mean:.0f}",
                ]
            )
    print()
    print(
        table(
            ["workload", "period", "accuracy", "overhead", "collisions"],
            rows,
            title="SPE sensitivity (cf. paper Fig. 8)",
        )
    )

    import numpy as np

    acc_series = {
        name: (
            np.array([p.period for p in pts], dtype=float),
            np.array([p.accuracy_mean * 100 for p in pts]),
        )
        for name, pts in results.items()
    }
    print()
    print(line_plot(acc_series, title="accuracy % vs period", logx=True))

    # the paper's guidance, recomputed from the sweep:
    stream = {p.period: p for p in results["stream"]}
    knee = next(
        (p for p in PERIODS if stream[p].accuracy_mean > 0.94), PERIODS[-1]
    )
    print(
        f"\nGuidance: avoid periods below ~2000 (drops/collisions); "
        f"accuracy stabilises from ~{knee}; 10000-50000 trades accuracy "
        f"against overhead best (paper Section VII-A)."
    )


if __name__ == "__main__":
    main()
