#!/usr/bin/env python3
"""A two-host profiling cluster end to end, over HTTP.

`repro.cluster` (see docs/serving.md) shards trial grids across shard
agents, reassembles the rows in plan order, and replicates the result
cache to every host. This script runs the whole topology in one
process:

1. start two `ShardAgent`s (each its own worker pool + cache) and a
   `Coordinator` fronting them, with per-tenant quotas,
2. expose the coordinator through the stdlib `HttpGateway` and submit
   a scenario over HTTP, streaming rows as shards land them,
3. fetch the final report — identical to a single-host run of the
   same spec,
4. rerun the spec — zero trials execute; every row replays from the
   replicated caches, and each agent alone could serve the whole
   grid.

Against a real cluster, start the processes instead::

    python -m repro cluster agent --port 7201 --workers 4
    python -m repro cluster coordinator --agents 127.0.0.1:7201 \
        --port 7123 --http-port 8123

Run:  python examples/cluster_client.py
"""

import tempfile

from repro.cluster import (
    Coordinator,
    HttpClusterClient,
    HttpGateway,
    QuotaPolicy,
    ShardAgent,
)
from repro.orchestrate import ResultCache
from repro.scenarios import ScenarioSpec, WorkloadSpec


def main() -> None:
    spec = ScenarioSpec(
        name="cluster_quickstart",
        kind="profile",
        workloads=(
            WorkloadSpec("stream", n_threads=2, scale=0.05),
            WorkloadSpec("pagerank", n_threads=2, scale=0.05),
        ),
        machine="small_test_machine",
        trials=2,
        seed=17,
    )

    with tempfile.TemporaryDirectory(prefix="cluster-example-") as tmp:
        # 1. two shard hosts plus a coordinator fronting them
        with ShardAgent(
            port=0, workers=2, cache=ResultCache(f"{tmp}/shard-a")
        ) as a, ShardAgent(
            port=0, workers=2, cache=ResultCache(f"{tmp}/shard-b")
        ) as b:
            coord = Coordinator(
                port=0,
                agents=[a.address, b.address],
                cache=ResultCache(f"{tmp}/coordinator"),
                quota=QuotaPolicy(capacity=32.0, refill_per_s=4.0),
            )
            # 2. the HTTP/JSON gateway over the coordinator
            with coord, HttpGateway(coord) as gateway:
                host, port = gateway.address
                print(f"gateway on http://{host}:{port}\n")
                client = HttpClusterClient(host, port)

                ack = client.submit(spec, tenant="example")
                print(f"job {ack['job_id']}: {ack['trials']} trials "
                      f"across {len(coord.agents)} agents")
                for event in client.stream(ack["job_id"]):
                    if event["event"] == "row":
                        print(f"  row {event['index']} "
                              f"(cached={event['cached']})")
                    else:
                        print(f"  {event['event']}: {event['state']}")

                # 3. plan-ordered rows, single-host-identical report
                results = client.results(ack["job_id"])
                prov = results["report"]["provenance"]
                execution = results["report"]["execution"]
                print(f"\nreport: kind={prov['kind']} "
                      f"spec=sha256:{prov['spec_hash'][:12]}")
                print(f"executed={execution['executed']} "
                      f"replicated={execution['replicated']}")

                # 4. rerun: a pure replay from the replicated caches
                replay = client.run(spec, tenant="example")
                assert replay.state == "done"
                assert all(e["cached"] for e in replay.rows)
                assert replay.report["execution"]["executed"] == 0
                print(f"replay: {len(replay.rows)} rows, all cached, "
                      f"0 trials executed")


if __name__ == "__main__":
    main()
