#!/usr/bin/env python3
"""Tiered memory: profile a workload, then let SPE samples place pages.

The placement loop of docs/memory-tiers.md, by hand, on a workload
with a strong hot/cold skew (a hot index, a cold value log — the shape
where placement matters):

1. build the workload on the tiered test machine (local/remote/CXL),
2. run an SPE **pilot** profile under a naive interleave placement,
3. rank pages by their sample counts (`page_hotness`) and build the
   hotness-driven placement — hot pages win the near tier,
4. re-profile under each placement and compare slowdown and the
   per-tier breakdown,
5. run the same study declaratively via the `tiering` scenario kind.

Run:  python examples/tiered_placement.py
"""

from repro.analysis import render_tier_usage, tiering_breakdown
from repro.machine import (
    AccessClass,
    MiB,
    apply_tiering,
    hotness_placement,
    interleave_placement,
    page_hotness,
    tiered_test_machine,
)
from repro.nmo import NmoMode, NmoProfiler, NmoSettings
from repro.scenarios import Session, tiering_sweep_spec
from repro.workloads import (
    Phase,
    Workload,
    random_in,
    register_workload,
    sequential,
    weighted_mix,
)

FAR_RATIO = 0.5  # near tier holds only half the pages
SETTINGS = NmoSettings(enable=True, mode=NmoMode.SAMPLING, period=512)


class HotColdWorkload(Workload):
    """Hot 2 MiB index, cold 24 MiB log: 85% of accesses hit the index."""

    name = "hotcold"

    def _build(self) -> None:
        index_bytes, log_bytes = 2 * MiB, 24 * MiB
        index = self.alloc_object("index", index_bytes)
        log = self.alloc_object("value_log", log_bytes)
        t = self.n_threads
        self.add_phase(
            Phase(
                name="serve",
                n_mem_ops=1_500_000 // t,
                cpi=0.8,
                addr_fn=weighted_mix(
                    [
                        (random_in(index, index_bytes // 8, 8, salt=1), 0.85),
                        (sequential(log, log_bytes // 8, 8, n_threads=t), 0.15),
                    ],
                    salt=3,
                ),
                classes=[
                    AccessClass(footprint=index_bytes, stride=0, weight=0.85),
                    AccessClass(footprint=log_bytes, stride=8, weight=0.15),
                ],
                slc_sharers=1,
                touch={"index": index_bytes, "value_log": log_bytes},
            )
        )
        self.finalise_dram_pressure()


def profile_under(machine, placement_fn, hotness=None):
    w = HotColdWorkload(machine, n_threads=2)
    placement = placement_fn(w.process.address_space)
    flat_s = w.baseline_seconds()
    w.attach_tiering(placement)
    apply_tiering(w, placement, hotness=hotness)
    result = NmoProfiler(w, SETTINGS, seed=0).run()
    return result, placement, w.baseline_seconds() / flat_s


def main() -> None:
    register_workload(HotColdWorkload)
    machine = tiered_test_machine()
    n_tiers = len(machine.tiers)

    # 2. pilot: naive interleave, just to find out where the heat is
    pilot, pilot_placement, pilot_slowdown = profile_under(
        machine, lambda asp: interleave_placement(asp, n_tiers, FAR_RATIO)
    )
    print(f"interleave placement: slowdown {pilot_slowdown:.2f}x")
    print(render_tier_usage(
        tiering_breakdown(pilot, machine, pilot_placement),
        title="Tier usage under interleave",
    ))

    # 3. + 4. hotness: the pilot's samples rank the pages; the hot
    # index fits the near tier's budget, the cold log absorbs the far
    # memory — slowdown collapses toward 1.0x
    pilot_aspace = HotColdWorkload(machine, n_threads=2).process.address_space
    hot = page_hotness(pilot_aspace, pilot.batch.addr)
    tuned, tuned_placement, tuned_slowdown = profile_under(
        machine,
        lambda asp: hotness_placement(asp, n_tiers, FAR_RATIO, hot),
        hotness=hot,
    )
    print(f"\nhotness placement:    slowdown {tuned_slowdown:.2f}x")
    print(render_tier_usage(
        tiering_breakdown(tuned, machine, tuned_placement),
        title="Tier usage under hotness (SPE-driven)",
    ))

    # 5. the same study as a declarative scenario (the registered
    # workload resolves through the registry like any built-in)
    spec = tiering_sweep_spec(
        machine="tiered_test_machine", workload="hotcold",
        n_threads=2, scale=1.0, period=512,
        policies=("interleave", "hotness"), far_ratios=(0.0, FAR_RATIO),
    )
    print("\n" + Session().run(spec).render())


if __name__ == "__main__":
    main()
