#!/usr/bin/env python3
"""Cloud capacity planning with NMO's temporal views (paper Figs. 2-3).

Profiles the two CloudSuite workloads inside a 256 GiB container, then
answers the questions the paper's §VI poses:

* how much memory does each job actually need (vs the reservation)?
* when does usage saturate (can we shrink the job after init)?
* is the job bandwidth-hungry enough to deserve HBM placement?

Run:  python examples/cloud_capacity_planning.py
"""

from repro.analysis.plotting import line_plot, table
from repro.machine import GiB, ampere_altra_max
from repro.nmo import (
    NmoMode,
    NmoProfiler,
    NmoSettings,
    dominant_period_s,
    overprovisioned_bytes,
    summarise_bandwidth,
    summarise_capacity,
)
from repro.workloads import InMemoryAnalyticsWorkload, PageRankWorkload

SCALE = 0.1  # tenth of the paper's wall-clock; shapes identical


def main() -> None:
    machine = ampere_altra_max()
    rows = []
    for cls in (InMemoryAnalyticsWorkload, PageRankWorkload):
        w = cls(machine, n_threads=32, scale=SCALE)
        settings = NmoSettings(
            enable=True, mode=NmoMode.BANDWIDTH, track_rss=True
        )
        r = NmoProfiler(w, settings).run()
        assert r.rss_series is not None and r.bw_series is not None

        cap = summarise_capacity(r.rss_series, limit_bytes=256 * GiB)
        bw = summarise_bandwidth(r.bw_series, machine)
        waste = overprovisioned_bytes(r.rss_series, 256 * GiB)
        rows.append(
            [
                w.name,
                f"{cap.peak_gib:.1f}",
                f"{cap.peak_utilisation:.1%}",
                f"{waste / GiB:.0f}",
                f"{cap.saturation_time_s:.1f}s",
                f"{bw.peak_gibs:.0f}",
                f"{bw.peak_utilisation:.0%}",
            ]
        )

        t, v = r.bw_series
        print(
            line_plot(
                {w.name: (t, v / GiB)},
                title=f"bandwidth GiB/s over time — {w.name}",
            )
        )
        if w.name == "inmem_analytics":
            print(
                f"  periodicity: {dominant_period_s(r.bw_series):.2f}s "
                f"(ALS iteration cadence; paper: ~15s at full scale)\n"
            )

    print(
        table(
            [
                "workload", "peak RSS GiB", "of 256 GiB", "wasted GiB",
                "saturates at", "peak BW GiB/s", "of peak BW",
            ],
            rows,
            title="Capacity / bandwidth planning summary (cf. Figs. 2-3)",
        )
    )
    print(
        "\nReading: both jobs reserve 256 GiB but peak far below it — the "
        "In-memory Analytics reservation could shrink ~5x; PageRank ~2x. "
        "Both saturate bandwidth in bursts, so they are HBM candidates "
        "only during load/sweep phases."
    )


if __name__ == "__main__":
    main()
