#!/usr/bin/env python3
"""The profiling service end to end: serve, submit, stream, replay.

`repro.serve` (see docs/serving.md) keeps a `Session` resident — one
persistent worker pool, one shared result cache, a bounded job
queue — behind a line-delimited JSON socket. This script runs the
whole loop in one process:

1. start a `ProfilingServer` on an OS-assigned port,
2. submit a small profile scenario and stream rows as trials land,
3. fetch the final report (identical to `python -m repro run`),
4. resubmit the same spec — every trial replays from the cache
   without touching a worker.

Against a real server (`python -m repro serve --port 7123`), replace
the context manager with `ServerClient("127.0.0.1", 7123)`.

Run:  python examples/serve_client.py
"""

import tempfile

from repro.orchestrate import ResultCache
from repro.scenarios import ScenarioSpec, WorkloadSpec
from repro.serve import ProfilingServer, ServerClient


def main() -> None:
    spec = ScenarioSpec(
        name="serve_quickstart",
        kind="profile",
        workloads=(WorkloadSpec("stream", n_threads=2, scale=0.05),),
        machine="small_test_machine",
        trials=3,
    )

    with tempfile.TemporaryDirectory(prefix="serve-example-") as tmp:
        with ProfilingServer(port=0, workers=2, cache=ResultCache(tmp)) as srv:
            host, port = srv.address
            print(f"server on {host}:{port}\n")
            with ServerClient(host, port) as client:
                # 2. submit, then watch rows stream in as trials land
                ack = client.submit(spec)
                print(f"job {ack['job_id']}: {ack['trials']} trials")
                for event in client.stream(ack["job_id"]):
                    if event["event"] == "row":
                        print(f"  row {event['index']} "
                              f"(cached={event['cached']})")
                    else:
                        print(f"  {event['event']}: {event['state']}")

                # 3. the final report goes through Session.build_report —
                #    the same bytes `python -m repro run` would cache
                results = client.results(ack["job_id"])
                prov = results["report"]["provenance"]
                print(f"\nreport: kind={prov['kind']} "
                      f"spec=sha256:{prov['spec_hash'][:12]}")

                # 4. resubmit: a pure cache replay, no worker touched
                outcome = client.run(spec)
                assert outcome.state == "done"
                assert all(e["cached"] for e in outcome.rows)
                print(f"replay: {len(outcome.rows)} rows, all cached")


if __name__ == "__main__":
    main()
