#!/usr/bin/env python3
"""High-resolution memory tracing of CFD (paper Figs. 5-6).

Profiles the Rodinia CFD solver at 1 and at 32 threads, renders both
address-over-time scatters, zooms into a high-resolution window, and
quantifies the paper's observation that only ``normals`` is split
cleanly between threads while the indirect neighbour gathers are not.

Run:  python examples/hires_tracing.py
"""

from repro.analysis.plotting import scatter_plot, table
from repro.evalharness import fig5_cfd_single_thread, fig6_cfd_32_threads


def main() -> None:
    print("profiling CFD at 1 thread ...")
    single = fig5_cfd_single_thread(n_elems=1 << 15, period=1024)
    print(
        scatter_plot(
            single["times"],
            single["addrs"],
            bands=single["bands"],
            title="CFD, 1 thread: continuous traverse (cf. Fig. 5)",
            height=18,
        )
    )

    print("\nprofiling CFD at 32 threads ...")
    multi = fig6_cfd_32_threads(n_elems=1 << 15, period=512)
    print(
        scatter_plot(
            multi["times"],
            multi["addrs"],
            bands=multi["bands"],
            title="CFD, 32 threads (cf. Fig. 6 left)",
            height=18,
        )
    )
    hr = multi["hires"]
    print(
        scatter_plot(
            hr["times"],
            hr["addrs"],
            bands=multi["bands"],
            title=(
                f"high-resolution window [{hr['t0']:.4f}s, {hr['t1']:.4f}s] "
                "(cf. Fig. 6 right)"
            ),
            height=18,
        )
    )

    rows = sorted(
        ((k, f"{v:.2f}") for k, v in multi["split_scores"].items()),
        key=lambda kv: kv[1],
        reverse=True,
    )
    print()
    print(
        table(
            ["object", "thread-split score"],
            [list(r) for r in rows],
            title="Which objects split cleanly across threads?",
        )
    )
    print(
        "\nReading: normals scores high (clean OpenMP chunking); the "
        "variables array scores low — its indirect neighbour gathers "
        "cross chunk boundaries, the irregularity the paper ties to "
        "unexpected multi-thread speedups (Section VI-C)."
    )


if __name__ == "__main__":
    main()
