#!/usr/bin/env python3
"""Quickstart: profile STREAM with NMO on the simulated Ampere Altra Max.

This is the 60-second tour of the reproduction:

1. build the paper's testbed machine (Table II),
2. build the STREAM workload (1 GiB arrays scaled down 32x),
3. configure NMO exactly as a user would — via the Table I environment
   variables — and run the profiler,
4. print the headline metrics the paper evaluates: Eq. 1 sampling
   accuracy, time overhead, collisions, and the per-object region view.

Run:  python examples/quickstart.py
"""

from repro.analysis.plotting import table
from repro.machine import ampere_altra_max
from repro.nmo import NmoProfiler, NmoSettings, RegionProfile
from repro.workloads import StreamWorkload


def main() -> None:
    machine = ampere_altra_max()
    print("Machine:", machine.name)

    workload = StreamWorkload(machine, n_threads=32, scale=1 / 32)
    print(
        f"Workload: STREAM triad, {workload.n_threads} threads, "
        f"{workload.total_mem_ops():,} memory ops"
    )

    # NMO is configured through environment variables (paper Table I)
    env = {
        "NMO_ENABLE": "on",
        "NMO_MODE": "sampling",
        "NMO_PERIOD": "4096",
        "NMO_TRACK_RSS": "on",
        "NMO_AUXBUFSIZE": "1",  # 1 MiB = 16 pages of 64 KiB
    }
    settings = NmoSettings.from_env(env)

    result = NmoProfiler(workload, settings, seed=0).run()

    print(f"\nSamples processed : {result.samples_processed:,}")
    print(f"Estimated accesses: {result.samples_processed * settings.period:,}")
    print(f"perf-stat baseline: {result.mem_counted:,}")
    print(f"Eq.1 accuracy     : {result.accuracy:.1%}")
    print(f"Time overhead     : {result.time_overhead:.2%}")
    print(f"Sample collisions : {result.collisions}")
    print(f"Buffer wakeups    : {result.wakeups}")

    regions = RegionProfile.build(result)
    rows = [
        [s.name, s.n_samples, s.n_loads, s.n_stores, f"{s.split_score:.2f}"]
        for s in regions.hottest(5)
    ]
    print()
    print(
        table(
            ["object", "samples", "loads", "stores", "thread split"],
            rows,
            title="Region profile (paper Fig. 4 view)",
        )
    )

    if result.rss_series is not None:
        _t, rss = result.rss_series
        print(f"\nPeak RSS: {rss.max() / 2**30:.2f} GiB")


if __name__ == "__main__":
    main()
