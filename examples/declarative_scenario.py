#!/usr/bin/env python3
"""Declarative scenarios: build a spec, round-trip it, run it.

The scenario API (`repro.scenarios`, see docs/scenarios.md) describes
an evaluation run as data — machine preset, workloads by registry
name, NMO settings, optional sweep/co-location — and executes any spec
through one `Session`:

1. build a custom period-sweep spec in code,
2. serialise it to JSON and back (lossless round-trip, stable hash),
3. run it with the parallel runner and print the report,
4. run a named preset (`quickstart`) the same way.

Run:  python examples/declarative_scenario.py
"""

from repro.nmo import NmoMode, NmoSettings
from repro.scenarios import (
    ScenarioSpec,
    Session,
    SweepAxis,
    WorkloadSpec,
    named_scenario,
)


def main() -> None:
    # 1. a custom sweep: BFS only, two periods, two trials per point
    spec = ScenarioSpec(
        name="bfs_period_study",
        kind="period_sweep",
        workloads=(WorkloadSpec("bfs", n_threads=16, scale=0.2),),
        settings=NmoSettings(enable=True, mode=NmoMode.SAMPLING, period=2048),
        sweep=SweepAxis("period", (2048, 8192)),
        trials=2,
    )

    # 2. the JSON form is the exchange format (checked-in scenario files,
    #    `python -m repro run <file>.json`); the round-trip is lossless
    text = spec.to_json()
    assert ScenarioSpec.from_json(text) == spec
    print(f"spec hash: sha256:{spec.spec_hash()[:12]}\n")
    print(text, "\n")

    # 3. one Session call plans the grid, fans it over workers, and
    #    returns the report (provenance included)
    report = Session(workers=2).run(spec)
    print(report.render(), "\n")

    # 4. presets cover the paper exhibits and the profile quickstart
    quick = named_scenario("quickstart")
    print(Session().run(quick).render())


if __name__ == "__main__":
    main()
