#!/usr/bin/env python3
"""Does a better sampler place pages better at equal overhead?

The sampling-strategy zoo (docs/sampling.md) scores each strategy
against exhaustive ground truth; this example closes the loop the way
the paper does — by feeding each strategy's pilot samples into the
tiered-memory placement policy and comparing the slowdown that
actually results:

1. build a hot/cold workload on the tiered test machine,
2. for each sampling strategy, run an SPE **pilot** profile at the
   same period (so overhead is comparable),
3. rank pages with `page_hotness(..., strategy=...)` — the strategy's
   inverse-probability weights undo its own sampling bias,
4. build the hotness placement from each ranking and re-time the
   workload under it; lower slowdown means the sampler found the heat.

Run:  python examples/sampling_placement.py
"""

import dataclasses

from repro.machine import (
    AccessClass,
    MiB,
    apply_tiering,
    hotness_placement,
    page_hotness,
    tiered_test_machine,
)
from repro.nmo import NmoMode, NmoProfiler, NmoSettings
from repro.spe import STRATEGY_NAMES
from repro.workloads import Phase, Workload, random_in, sequential, weighted_mix

FAR_RATIO = 0.9  # near tier holds only ~10% of pages: ranks must be right
PERIOD = 512  # one period for every strategy: equal sampling budget
SETTINGS = NmoSettings(enable=True, mode=NmoMode.SAMPLING, period=PERIOD)


class HotColdWorkload(Workload):
    """Hot 2 MiB index, cold 24 MiB log: 85% of accesses hit the index."""

    name = "hotcold_sampling"

    def _build(self) -> None:
        index_bytes, log_bytes = 2 * MiB, 24 * MiB
        index = self.alloc_object("index", index_bytes)
        log = self.alloc_object("value_log", log_bytes)
        t = self.n_threads
        self.add_phase(
            Phase(
                name="serve",
                n_mem_ops=1_500_000 // t,
                cpi=0.8,
                addr_fn=weighted_mix(
                    [
                        (random_in(index, index_bytes // 8, 8, salt=1), 0.85),
                        (sequential(log, log_bytes // 8, 8, n_threads=t), 0.15),
                    ],
                    salt=3,
                ),
                classes=[
                    AccessClass(footprint=index_bytes, stride=0, weight=0.85),
                    AccessClass(footprint=log_bytes, stride=8, weight=0.15),
                ],
                slc_sharers=1,
                touch={"index": index_bytes, "value_log": log_bytes},
            )
        )
        self.finalise_dram_pressure()


def pilot_hotness(machine, strategy: str):
    """One pilot profile under ``strategy``; bias-corrected page ranks."""
    w = HotColdWorkload(machine, n_threads=2)
    prof = NmoProfiler(w, SETTINGS, seed=0)
    prof.backend.config = dataclasses.replace(
        prof.backend.config, strategy=strategy
    )
    result = prof.run()
    hot = page_hotness(
        w.process.address_space, result.batch.addr, strategy=strategy
    )
    return hot, result.time_overhead


def placed_slowdown(machine, hotness) -> float:
    """Slowdown of the hotness placement those samples imply."""
    w = HotColdWorkload(machine, n_threads=2)
    placement = hotness_placement(
        w.process.address_space, len(machine.tiers), FAR_RATIO, hotness
    )
    flat_s = w.baseline_seconds()
    w.attach_tiering(placement)
    apply_tiering(w, placement, hotness=hotness)
    return w.baseline_seconds() / flat_s


def main() -> None:
    machine = tiered_test_machine()
    print(f"placement quality per sampling strategy (period {PERIOD}):\n")
    print(f"{'strategy':<10} {'overhead':>9} {'slowdown':>9}")
    for strategy in STRATEGY_NAMES:
        hot, overhead = pilot_hotness(machine, strategy)
        slowdown = placed_slowdown(machine, hot)
        print(f"{strategy:<10} {overhead:>8.2%} {slowdown:>8.2f}x")
    print(
        "\nEvery pilot pays the same sampling period; the spread in"
        "\nslowdown is purely what each strategy's samples were worth."
    )


if __name__ == "__main__":
    main()
